#include "fault/runner.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/feasibility.hpp"

namespace hare::fault {

namespace {

/// Machines with at least one surviving GPU, re-indexed into a standalone
/// cluster (domains preserved so the sharded planner cuts the same
/// topology), plus the positional local -> global GPU mapping.
struct SurvivingCluster {
  cluster::Cluster sub;
  std::vector<GpuId> global_gpu;  ///< local GpuId g <-> global_gpu[g]
};

SurvivingCluster surviving_cluster(const cluster::Cluster& cluster,
                                   const std::vector<char>& gpu_alive) {
  SurvivingCluster result;
  cluster::ClusterBuilder builder;
  for (const cluster::Machine& machine : cluster.machines()) {
    std::vector<GpuId> alive;
    for (const GpuId gpu_id : machine.gpus) {
      if (gpu_alive[static_cast<std::size_t>(gpu_id.value())]) {
        alive.push_back(gpu_id);
      }
    }
    if (alive.empty()) continue;
    builder.add_machine(cluster.gpu(alive.front()).type, alive.size(),
                        machine.network_gbps, machine.name, machine.domain);
    result.global_gpu.insert(result.global_gpu.end(), alive.begin(),
                             alive.end());
  }
  result.sub = builder.build();
  return result;
}

/// A displaced job's remaining work, re-anchored for the sub-instance.
struct SubJob {
  JobId global;
  RoundIndex first_round = 0;
};

}  // namespace

FaultRunner::FaultRunner(const cluster::Cluster& cluster,
                         const workload::JobSet& jobs,
                         const profiler::TimeTable& profiled,
                         const profiler::TimeTable& actual,
                         FaultRunnerConfig config)
    : cluster_(cluster),
      jobs_(jobs),
      profiled_(profiled),
      actual_(actual),
      config_(std::move(config)) {
  replan_fn_ = [this](const ReplanRequest& request) { return replan(request); };
}

ReplanResult FaultRunner::replan(const ReplanRequest& request) {
  if (report_.replans_full < config_.spec.replan_budget) {
    ++report_.replans_full;
    static obs::Counter& full = obs::counter("fault.replans_full");
    full.add();
    return replan_with_planner(request);
  }
  ++report_.replans_greedy;
  static obs::Counter& greedy = obs::counter("fault.replans_greedy");
  greedy.add();
  return replan_greedy(request);
}

ReplanResult FaultRunner::replan_with_planner(const ReplanRequest& request) {
  HARE_SPAN("fault", "fault.replan_full");
  ReplanResult result;
  result.appended.resize(cluster_.gpu_count());

  const SurvivingCluster survivors =
      surviving_cluster(cluster_, request.gpu_alive);
  if (survivors.sub.gpu_count() == 0) return result;  // dead-letter them all

  // Sub-instance: each displaced job's remaining rounds become a fresh job
  // arriving at its backoff release. Jobs no surviving GPU can hold are
  // left out (the simulator dead-letters what the answer doesn't cover).
  workload::JobSet sub_jobs;
  std::vector<SubJob> mapping;
  for (const ReplanRequest::JobRequest& jr : request.jobs) {
    const workload::Job& job = jobs_.job(jr.job);
    const std::uint32_t remaining =
        job.rounds() - static_cast<std::uint32_t>(jr.first_round);
    if (remaining == 0) continue;
    bool fits = false;
    for (const auto& gpu : survivors.sub.gpus()) {
      if (workload::task_fits(job, gpu)) {
        fits = true;
        break;
      }
    }
    if (!fits) continue;
    workload::JobSpec spec = job.spec;
    spec.rounds = remaining;
    spec.arrival = jr.release;
    sub_jobs.add_job(std::move(spec));
    mapping.push_back(SubJob{jr.job, jr.first_round});
  }
  if (sub_jobs.empty()) return result;

  profiler::TimeTable sub_times(sub_jobs.job_count(),
                                survivors.sub.gpu_count());
  for (std::size_t j = 0; j < mapping.size(); ++j) {
    for (std::size_t g = 0; g < survivors.global_gpu.size(); ++g) {
      const GpuId global = survivors.global_gpu[g];
      sub_times.set(JobId(static_cast<int>(j)), GpuId(static_cast<int>(g)),
                    profiled_.tc(mapping[j].global, global),
                    profiled_.ts(mapping[j].global, global));
    }
  }

  const sched::SchedulerInput input{survivors.sub, sub_jobs, sub_times};
  sim::Schedule sub_schedule;
  if (config_.sharded) {
    shard::HierarchicalPlanner planner(config_.shard);
    sub_schedule = planner.schedule(input);
    const shard::HierarchicalPlanInfo& info = planner.last_plan();
    report_.replan_shards_total += info.shard_count;
    for (const shard::ShardStats& stats : info.shards) {
      if (stats.jobs > 0) ++report_.replan_shards_planned;
    }
  } else {
    core::HareScheduler planner(config_.hare);
    sub_schedule = planner.schedule(input);
  }

  // Scatter the sub-schedule back onto original task/GPU ids.
  for (std::size_t g = 0; g < sub_schedule.sequences.size(); ++g) {
    const GpuId global = survivors.global_gpu[g];
    auto& out = result.appended[static_cast<std::size_t>(global.value())];
    for (const TaskId local_task : sub_schedule.sequences[g]) {
      const workload::Task& task = sub_jobs.task(local_task);
      const SubJob& sub = mapping[static_cast<std::size_t>(task.job.value())];
      const workload::Job& job = jobs_.job(sub.global);
      const std::size_t round =
          static_cast<std::size_t>(sub.first_round) +
          static_cast<std::size_t>(task.round);
      out.push_back(job.task_at(static_cast<std::uint32_t>(round), task.slot));
    }
  }
  return result;
}

ReplanResult FaultRunner::replan_greedy(const ReplanRequest& request) {
  HARE_SPAN("fault", "fault.replan_greedy");
  ReplanResult result;
  result.appended.resize(cluster_.gpu_count());

  // WSPT over remaining work (weight / cheapest remaining processing
  // time), ties by job id: the same priority the fluid relaxation uses,
  // without the LP. Placement is earliest-finish on the survivors' load
  // vector, rounds in order, barriers approximated by the round's worst
  // finish + sync.
  std::vector<Time> phi = request.gpu_busy_until;
  std::vector<std::size_t> order(request.jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> priority(request.jobs.size(), 0.0);
  for (std::size_t i = 0; i < request.jobs.size(); ++i) {
    const ReplanRequest::JobRequest& jr = request.jobs[i];
    const workload::Job& job = jobs_.job(jr.job);
    const double remaining_tasks =
        static_cast<double>(job.rounds() -
                            static_cast<std::uint32_t>(jr.first_round)) *
        static_cast<double>(job.tasks_per_round());
    const double work =
        std::max(1e-12, remaining_tasks * profiled_.min_total(jr.job));
    priority[i] = job.spec.weight / work;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (priority[a] != priority[b]) return priority[a] > priority[b];
    return request.jobs[a].job.value() < request.jobs[b].job.value();
  });

  for (const std::size_t i : order) {
    const ReplanRequest::JobRequest& jr = request.jobs[i];
    const workload::Job& job = jobs_.job(jr.job);
    std::vector<GpuId> candidates;
    for (std::size_t g = 0; g < cluster_.gpu_count(); ++g) {
      if (!request.gpu_alive[g]) continue;
      if (workload::task_fits(job, cluster_.gpu(GpuId(static_cast<int>(g))))) {
        candidates.push_back(GpuId(static_cast<int>(g)));
      }
    }
    if (candidates.empty()) continue;  // dead-letters via uncovered rounds

    Time job_ready = jr.release;
    for (std::uint32_t r = static_cast<std::uint32_t>(jr.first_round);
         r < job.rounds(); ++r) {
      Time barrier = job_ready;
      for (std::uint32_t slot = 0; slot < job.tasks_per_round(); ++slot) {
        GpuId best = candidates.front();
        Time best_finish = kTimeInfinity;
        for (const GpuId gpu_id : candidates) {
          const std::size_t g = static_cast<std::size_t>(gpu_id.value());
          const Time finish =
              std::max(phi[g], job_ready) + profiled_.tc(jr.job, gpu_id);
          if (finish < best_finish) {
            best_finish = finish;
            best = gpu_id;
          }
        }
        const std::size_t g = static_cast<std::size_t>(best.value());
        phi[g] = best_finish;
        barrier = std::max(barrier, best_finish + profiled_.ts(jr.job, best));
        result.appended[g].push_back(
            job.task_at(static_cast<std::uint32_t>(r), slot));
      }
      job_ready = barrier;
    }
  }
  return result;
}

FaultRunReport FaultRunner::run() {
  HARE_SPAN("fault", "fault.run");
  report_ = {};

  const sched::SchedulerInput input{cluster_, jobs_, profiled_};
  if (config_.sharded) {
    shard::HierarchicalPlanner planner(config_.shard);
    report_.schedule = planner.schedule(input);
  } else {
    core::HareScheduler planner(config_.hare);
    report_.schedule = planner.schedule(input);
  }

  sim::Simulator baseline(cluster_, jobs_, actual_, config_.sim);
  report_.fault_free = baseline.run(report_.schedule);

  report_.plan = generate_fault_plan(config_.spec, cluster_, jobs_,
                                     report_.fault_free.makespan);

  sim::SimConfig faulted_config = config_.sim;
  faulted_config.fault_plan = &report_.plan;
  faulted_config.retry = config_.spec.retry;
  faulted_config.replan = &replan_fn_;
  sim::Simulator faulted(cluster_, jobs_, actual_, faulted_config);
  report_.faulted = faulted.run(report_.schedule);

  // Degradation: achieved weighted JCT over the jobs that completed under
  // faults vs. what the same jobs cost fault-free. Starvation is the
  // worst single-job inflation in that set.
  double achieved = 0.0;
  double baseline_jct = 0.0;
  double worst = 1.0;
  for (std::size_t j = 0; j < report_.faulted.jobs.size(); ++j) {
    const sim::JobRecord& after = report_.faulted.jobs[j];
    if (after.outcome != sim::JobOutcome::Completed) continue;
    const sim::JobRecord& before = report_.fault_free.jobs[j];
    achieved += after.weight * after.jct();
    baseline_jct += before.weight * before.jct();
    if (before.jct() > 0.0) {
      worst = std::max(worst, after.jct() / before.jct());
    }
  }
  report_.degradation_ratio =
      baseline_jct > 0.0 ? achieved / baseline_jct : 1.0;
  report_.starvation = worst;

  // Fragmentation: alive-but-idle fraction of the faulted run. Downtime
  // windows per GPU are replayed from the fault plan and clipped to the
  // makespan.
  const Time makespan = report_.faulted.makespan;
  if (makespan > 0.0) {
    std::vector<Time> down_since(cluster_.gpu_count(), -1.0);
    std::vector<Time> downtime(cluster_.gpu_count(), 0.0);
    const auto mark_down = [&](GpuId gpu_id, Time t) {
      const std::size_t g = static_cast<std::size_t>(gpu_id.value());
      if (down_since[g] < 0.0) down_since[g] = std::min(t, makespan);
    };
    const auto mark_up = [&](GpuId gpu_id, Time t) {
      const std::size_t g = static_cast<std::size_t>(gpu_id.value());
      if (down_since[g] >= 0.0) {
        downtime[g] += std::max(0.0, std::min(t, makespan) - down_since[g]);
        down_since[g] = -1.0;
      }
    };
    for (const FaultEvent& event : report_.plan.events) {
      switch (event.kind) {
        case FaultKind::MachineFail:
          for (const GpuId gpu_id : cluster_.machine(event.machine).gpus) {
            mark_down(gpu_id, event.time);
          }
          break;
        case FaultKind::MachineRecover:
          for (const GpuId gpu_id : cluster_.machine(event.machine).gpus) {
            mark_up(gpu_id, event.time);
          }
          break;
        case FaultKind::GpuFail:
          mark_down(event.gpu, event.time);
          break;
        case FaultKind::GpuRecover:
          mark_up(event.gpu, event.time);
          break;
        default:
          break;
      }
    }
    Time alive_total = 0.0;
    Time busy_total = 0.0;
    for (std::size_t g = 0; g < cluster_.gpu_count(); ++g) {
      Time down = downtime[g];
      if (down_since[g] >= 0.0) down += makespan - down_since[g];
      alive_total += makespan - std::min(down, makespan);
      busy_total += report_.faulted.gpus[g].busy_compute +
                    report_.faulted.gpus[g].busy_switch;
    }
    report_.fragmentation =
        alive_total > 0.0
            ? std::clamp(1.0 - busy_total / alive_total, 0.0, 1.0)
            : 0.0;
  }

  obs::gauge("fault.degradation_ratio").set(report_.degradation_ratio);
  obs::gauge("fault.fragmentation").set(report_.fragmentation);
  obs::gauge("fault.starvation").set(report_.starvation);

  common::log_debug("fault: scenario done, degradation ",
                    report_.degradation_ratio, ", dead_letters ",
                    report_.faulted.faults.dead_letters, ", replans ",
                    report_.replans_full, "+", report_.replans_greedy);
  return report_;
}

}  // namespace hare::fault
