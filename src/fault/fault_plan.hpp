// Fault-injection plan: the timeline of hardware/job events a simulation
// replays, plus the retry/replan contracts the simulator exposes.
//
// A `FaultPlan` is a time-sorted list of `FaultEvent`s generated once
// (deterministically, from a seeded `FaultSpec`) and handed to the
// simulator by pointer. The simulator pushes every event into its event
// queue at init, so fault events interleave with task events under the
// same strict (time, sequence) order that makes serial and pooled sweep
// runs bit-identical.
//
// Recovery crosses layers: the simulator knows *when* capacity died but
// not how to plan around it, and the planner knows nothing about
// simulated time. `ReplanFn` is the seam — on a failure the simulator
// builds a `ReplanRequest` describing the surviving cluster and the
// displaced jobs, and whoever owns the planner (fault::FaultRunner in
// the default wiring) answers with per-GPU task sequences to append.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace hare::fault {

enum class FaultKind : std::uint8_t {
  MachineFail,     ///< every GPU on the machine dies
  MachineRecover,  ///< every GPU on the machine comes back (cold memory)
  GpuFail,
  GpuRecover,
  JobCancel,        ///< user-initiated: job leaves the system, no retry
  JobComplete,      ///< job finished early (serve-layer horizon release)
  StragglerStart,   ///< GPU compute slows by `factor` until StragglerEnd
  StragglerEnd,
};

struct FaultEvent {
  Time time = 0.0;
  FaultKind kind = FaultKind::GpuFail;
  MachineId machine;  ///< Machine{Fail,Recover}
  GpuId gpu;          ///< Gpu{Fail,Recover}, Straggler{Start,End}
  JobId job;          ///< JobCancel / JobComplete
  double factor = 1.0;  ///< StragglerStart slowdown multiplier (> 1)
};

struct FaultPlan {
  std::vector<FaultEvent> events;  ///< stable-sorted by time

  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// Checkpoint-restart policy for jobs displaced by a failure. A job
/// checkpoints at its last *completed* round; on its k-th restart it
/// re-enters the queue after `backoff(k)` seconds and its first
/// rescheduled round pays `restart_overhead_s` extra switching cost
/// (checkpoint restore). After `max_retries` restarts the next failure
/// dead-letters the job.
struct RetryPolicy {
  std::size_t max_retries = 3;
  Time backoff_base_s = 5.0;
  double backoff_factor = 2.0;
  Time backoff_cap_s = 300.0;
  Time restart_overhead_s = 0.0;

  /// Delay before restart attempt `attempt` (1-based) may start.
  [[nodiscard]] Time backoff(std::size_t attempt) const {
    Time delay = backoff_base_s;
    for (std::size_t i = 1; i < attempt; ++i) {
      delay *= backoff_factor;
      if (delay >= backoff_cap_s) break;
    }
    return delay < backoff_cap_s ? delay : backoff_cap_s;
  }
};

/// Snapshot of the simulation the planner sees on a replan: which GPUs
/// survive, when each frees up, and which jobs need new placements.
struct ReplanRequest {
  Time now = 0.0;
  /// Per-GPU liveness, indexed by GpuId value (char: vector<bool> has no
  /// data() and the planner indexes hot loops over it).
  std::vector<char> gpu_alive;
  /// Earliest time each surviving GPU can take appended work (its current
  /// task's compute end, or `now` when idle).
  std::vector<Time> gpu_busy_until;

  struct JobRequest {
    JobId job;
    RoundIndex first_round = 0;  ///< checkpoint: first round to re-run
    Time release = 0.0;          ///< arrival + backoff gate for the restart
    std::size_t attempt = 0;     ///< restart count including this one
  };
  std::vector<JobRequest> jobs;
};

/// Per-GPU task sequences (original TaskIds) appended after each GPU's
/// surviving entries. Tasks must belong to requested jobs, target alive
/// GPUs, and cover rounds >= the job's `first_round`.
struct ReplanResult {
  std::vector<std::vector<TaskId>> appended;  ///< indexed by GpuId value
};

using ReplanFn = std::function<ReplanResult(const ReplanRequest&)>;

}  // namespace hare::fault
