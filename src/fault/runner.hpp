// End-to-end fault scenario runner: plan -> fault-free run -> inject ->
// replan-on-failure -> degradation report.
//
// The runner owns the seam the simulator's `ReplanFn` hook needs: on a
// failure it builds a re-indexed sub-instance over the *surviving*
// cluster (machines keep their network domains; dead GPUs vanish) holding
// only the displaced jobs' remaining rounds, plans it with the real
// planner — the flat core::HareScheduler, or shard::HierarchicalPlanner
// when `sharded` is set, in which case only shards that receive displaced
// jobs actually plan (empty shards short-circuit; the report's shard
// counters prove it) — and maps the sub-schedule back to original
// TaskIds. A bounded replan budget guards planner cost under failure
// storms: once spent, repairs fall back to a greedy earliest-finish fluid
// placement over the survivors.
//
// Everything is deterministic: the fault plan comes from a seeded spec,
// the planner is deterministic, and the simulator orders fault events by
// (time, sequence) — the same scenario is bit-identical across repeated,
// serial, and pooled runs (tests/test_fault.cpp holds it to that).
#pragma once

#include <cstddef>
#include <memory>

#include "core/hare_scheduler.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_spec.hpp"
#include "shard/hierarchical_planner.hpp"
#include "sim/simulator.hpp"

namespace hare::fault {

struct FaultRunnerConfig {
  FaultSpec spec;
  /// Base simulator configuration (switching policy, queue backend, ...);
  /// the runner fills in the fault plan / retry policy / replan hook.
  sim::SimConfig sim{};
  /// Flat planner configuration (baseline plan and flat replans).
  core::HareConfig hare{};
  /// Plan (and replan) through the two-level sharded planner instead of
  /// the flat scheduler.
  bool sharded = false;
  shard::ShardPlannerConfig shard{};
};

struct FaultRunReport {
  sim::Schedule schedule;    ///< baseline (pre-fault) plan
  FaultPlan plan;            ///< the injected event timeline
  sim::SimResult fault_free;
  sim::SimResult faulted;

  /// Achieved vs. fault-free weighted JCT over the jobs that completed in
  /// the faulted run (>= 1.0 minus noise; 1.0 = faults cost nothing).
  double degradation_ratio = 1.0;
  /// 1 - busy / alive GPU-time over the faulted makespan: capacity that
  /// survived the faults but ran nothing (Mamirov's fragmentation).
  double fragmentation = 0.0;
  /// Worst per-job JCT inflation (faulted / fault-free) across completed
  /// jobs — the starvation face of a degradation that averages look hide.
  double starvation = 1.0;

  std::size_t replans_full = 0;    ///< replans through the real planner
  std::size_t replans_greedy = 0;  ///< budget-exhausted greedy repairs
  /// Sharded replans only: shards that actually planned (had displaced
  /// jobs assigned) vs. shards the partitions offered, summed over
  /// replans. planned < total proves failures replan locally.
  std::size_t replan_shards_planned = 0;
  std::size_t replan_shards_total = 0;
};

class FaultRunner {
 public:
  /// `profiled` is what planning (baseline and replans) sees; `actual` is
  /// the ground truth the simulator charges.
  FaultRunner(const cluster::Cluster& cluster, const workload::JobSet& jobs,
              const profiler::TimeTable& profiled,
              const profiler::TimeTable& actual, FaultRunnerConfig config);

  [[nodiscard]] FaultRunReport run();

 private:
  [[nodiscard]] ReplanResult replan(const ReplanRequest& request);
  [[nodiscard]] ReplanResult replan_with_planner(const ReplanRequest& request);
  [[nodiscard]] ReplanResult replan_greedy(const ReplanRequest& request);

  const cluster::Cluster& cluster_;
  const workload::JobSet& jobs_;
  const profiler::TimeTable& profiled_;
  const profiler::TimeTable& actual_;
  FaultRunnerConfig config_;
  FaultRunReport report_;
  ReplanFn replan_fn_;
};

}  // namespace hare::fault
