#include "runtime/runtime.hpp"

#include <algorithm>
#include <optional>
#include <queue>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/message_queue.hpp"
#include "workload/model_zoo.hpp"

namespace hare::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/// Virtual clock: simulated seconds <-> real time points.
class VirtualClock {
 public:
  explicit VirtualClock(double us_per_sim_second)
      : us_per_s_(us_per_sim_second), start_(Clock::now()) {}

  [[nodiscard]] Time now() const {
    const auto elapsed =
        std::chrono::duration<double, std::micro>(Clock::now() - start_);
    return elapsed.count() / us_per_s_;
  }

  [[nodiscard]] Clock::time_point real_deadline(Time virtual_time) const {
    return start_ + std::chrono::microseconds(static_cast<std::int64_t>(
                        virtual_time * us_per_s_));
  }

  void sleep_until(Time virtual_time) const {
    std::this_thread::sleep_until(real_deadline(virtual_time));
  }

  void sleep_for(Time virtual_duration) const {
    if (virtual_duration <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(virtual_duration * us_per_s_)));
  }

 private:
  double us_per_s_;
  Clock::time_point start_;
};

struct GradientMessage {
  JobId job;
  RoundIndex round = 0;
  Time sync_end = 0.0;  ///< virtual time the PS finishes applying it
};

/// Barrier and completion bookkeeping shared by the hub and the executors.
struct SharedState {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::vector<int>> remaining;  ///< [job][round]
  std::vector<std::vector<Time>> barrier;   ///< [job][round] virtual time
  std::vector<Time> job_completion;
  std::size_t jobs_finished = 0;

  explicit SharedState(const workload::JobSet& jobs) {
    remaining.resize(jobs.job_count());
    barrier.resize(jobs.job_count());
    job_completion.assign(jobs.job_count(), 0.0);
    for (const auto& job : jobs.jobs()) {
      const auto j = static_cast<std::size_t>(job.id.value());
      remaining[j].assign(job.rounds(),
                          static_cast<int>(job.tasks_per_round()));
      barrier[j].assign(job.rounds(), 0.0);
    }
  }

  /// Executor side: block until round `r` of `job` has fully synchronized;
  /// returns the barrier's virtual time.
  Time wait_round(JobId job, RoundIndex r) {
    std::unique_lock lock(mutex);
    const auto j = static_cast<std::size_t>(job.value());
    const auto round = static_cast<std::size_t>(r);
    cv.wait(lock, [&] { return remaining[j][round] == 0; });
    return barrier[j][round];
  }

  /// Hub side: apply one synchronized gradient.
  void apply(const workload::JobSet& jobs, const GradientMessage& message) {
    static obs::Counter& applied = obs::counter("runtime.gradients_applied");
    applied.add();
    std::scoped_lock lock(mutex);
    const auto j = static_cast<std::size_t>(message.job.value());
    const auto round = static_cast<std::size_t>(message.round);
    HARE_CHECK_MSG(remaining[j][round] > 0, "round over-synchronized");
    barrier[j][round] = std::max(barrier[j][round], message.sync_end);
    if (--remaining[j][round] == 0) {
      const workload::Job& job = jobs.job(message.job);
      if (round + 1 == job.rounds()) {
        job_completion[j] = barrier[j][round];
        ++jobs_finished;
      }
      cv.notify_all();
    }
  }
};

/// Parameter-server hub: receives gradient messages and applies each at
/// its (virtual) synchronization completion time.
void hub_loop(const workload::JobSet& jobs, const VirtualClock& clock,
              MessageQueue<GradientMessage>& queue, SharedState& shared) {
  if (obs::Tracer::enabled()) {
    obs::Tracer::instance().set_thread_name("ps-hub");
  }
  HARE_SPAN("runtime", "runtime.hub");
  auto later = [](const GradientMessage& a, const GradientMessage& b) {
    return a.sync_end > b.sync_end;
  };
  std::priority_queue<GradientMessage, std::vector<GradientMessage>,
                      decltype(later)>
      pending(later);

  for (;;) {
    if (!queue.closed()) {
      const auto deadline =
          pending.empty() ? Clock::now() + std::chrono::milliseconds(50)
                          : clock.real_deadline(pending.top().sync_end);
      if (auto message = queue.pop_until(deadline)) {
        pending.push(*message);
      }
    } else {
      // Shutdown: drain stragglers, then sleep out the remaining syncs.
      while (auto message = queue.try_pop()) pending.push(*message);
      if (pending.empty()) return;
      std::this_thread::sleep_until(
          clock.real_deadline(pending.top().sync_end));
    }
    while (!pending.empty() && clock.now() >= pending.top().sync_end) {
      shared.apply(jobs, pending.top());
      pending.pop();
    }
  }
}

}  // namespace

ExecutorRuntime::ExecutorRuntime(const cluster::Cluster& cluster,
                                 const workload::JobSet& jobs,
                                 const profiler::TimeTable& times,
                                 RuntimeConfig config)
    : cluster_(cluster), jobs_(jobs), times_(times), config_(config) {
  HARE_CHECK_MSG(config_.microseconds_per_sim_second > 0.0,
                 "virtual clock rate must be positive");
}

RuntimeResult ExecutorRuntime::run(const sim::Schedule& schedule) {
  HARE_SPAN("runtime", "runtime.run");
  HARE_CHECK_MSG(schedule.gpu_count() == cluster_.gpu_count(),
                 "schedule does not match cluster");
  sim::validate_schedule(schedule, jobs_);

  const VirtualClock clock(config_.microseconds_per_sim_second);
  MessageQueue<GradientMessage> gradients;
  SharedState shared(jobs_);
  const switching::SwitchCostModel switch_model(config_.switching);

  std::atomic<std::size_t> switch_count{0};
  std::atomic<std::size_t> resident_hits{0};

  // Per-GPU executor threads (§6: trainer processes inside each executor).
  std::vector<std::thread> executors;
  executors.reserve(cluster_.gpu_count());
  for (std::size_t g = 0; g < cluster_.gpu_count(); ++g) {
    executors.emplace_back([&, g] {
      if (obs::Tracer::enabled()) {
        obs::Tracer::instance().set_thread_name("executor-" +
                                                std::to_string(g));
      }
      HARE_SPAN("runtime", "runtime.executor");
      const GpuId gpu_id(static_cast<int>(g));
      const cluster::Gpu& hw = cluster_.gpu(gpu_id);
      std::optional<switching::SpeculativeMemoryManager> memory;
      const bool hare_policy =
          config_.switching.policy == switching::SwitchPolicy::Hare;
      if (config_.use_memory_manager && hare_policy) {
        memory.emplace(hw.spec().memory);
      }
      std::optional<JobId> previous_job;

      // Virtual cursor: the GPU's intended timeline. Real sleeps only
      // *pace* the thread (sleep_until the absolute deadline); virtual
      // timestamps are computed, never measured, so OS wakeup jitter does
      // not accumulate into the results.
      Time cursor = 0.0;
      for (TaskId task_id : schedule.sequences[g]) {
        HARE_SPAN_ARG("runtime", "runtime.task", "vt", cursor);
        const workload::Task& task = jobs_.task(task_id);
        const workload::Job& job = jobs_.job(task.job);

        cursor = std::max(cursor, job.spec.arrival);
        if (task.round > 0) {
          const Time barrier = shared.wait_round(task.job, task.round - 1);
          cursor = std::max(cursor, barrier);
        }

        const switching::SwitchBreakdown breakdown = switch_model.switch_cost(
            task.job, job.spec.model, hw.type, previous_job,
            memory ? &*memory : nullptr);
        if (memory) {
          const workload::ModelSpec& model =
              workload::model_spec(job.spec.model);
          memory->on_task_start(
              task.job,
              workload::task_memory_footprint(model,
                                              job.effective_batch_size()),
              workload::model_state_bytes(model));
        }
        if (previous_job && *previous_job != task.job) {
          switch_count.fetch_add(1, std::memory_order_relaxed);
          if (breakdown.model_resident) {
            resident_hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
        previous_job = task.job;

        cursor += breakdown.total() + times_.tc(task.job, gpu_id);
        clock.sleep_until(cursor);  // pace real time to the virtual plan
        if (memory) memory->on_task_complete(cursor);

        GradientMessage message;
        message.job = task.job;
        message.round = task.round;
        message.sync_end = cursor + times_.ts(task.job, gpu_id);
        HARE_CHECK_MSG(gradients.push(message), "hub closed prematurely");
      }
    });
  }

  std::thread hub(
      [&] { hub_loop(jobs_, clock, gradients, shared); });

  for (auto& executor : executors) executor.join();
  gradients.close();
  hub.join();

  RuntimeResult result;
  result.job_completion = shared.job_completion;
  for (const auto& job : jobs_.jobs()) {
    const auto j = static_cast<std::size_t>(job.id.value());
    HARE_CHECK_MSG(shared.remaining[j].back() == 0,
                   "job " << job.id << " did not finish in the runtime");
    result.makespan = std::max(result.makespan, result.job_completion[j]);
    result.weighted_completion += job.spec.weight * result.job_completion[j];
    result.weighted_jct +=
        job.spec.weight * (result.job_completion[j] - job.spec.arrival);
  }
  result.switch_count = switch_count.load();
  result.resident_hits = resident_hits.load();
  common::log_debug("runtime: replay finished, makespan ", result.makespan,
                    " s, ", result.switch_count, " switches");
  return result;
}

}  // namespace hare::runtime
