// Multi-threaded executor runtime (§6's scheduler/executor architecture).
//
// The prototype runs a central scheduler process plus per-machine executors
// that train tasks in the sequence received from the scheduler, posting
// gradients to per-job parameter servers. This module reproduces that
// architecture with real threads inside one process:
//
//   * one executor thread per GPU, consuming its task sequence in order,
//     honouring job arrivals and round barriers, charging switch costs via
//     the same SwitchCostModel + SpeculativeMemoryManager the simulator
//     uses, and "training" by sleeping the (scaled) task duration;
//   * a parameter-server hub thread that receives gradient messages,
//     applies each task's synchronization delay, maintains per-round
//     barriers, and wakes executors blocked on them;
//   * a virtual clock mapping simulated seconds to real microseconds so a
//     multi-minute workload executes in milliseconds of wall time.
//
// The runtime's results (per-job virtual completion times) are validated
// against the discrete-event simulator in the tests: both enforce the same
// constraints, so they must agree up to scheduling jitter.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "profiler/time_table.hpp"
#include "sim/schedule.hpp"
#include "switching/switch_model.hpp"
#include "workload/job.hpp"

namespace hare::runtime {

struct RuntimeConfig {
  /// Real microseconds per simulated second (virtual clock rate).
  double microseconds_per_sim_second = 100.0;
  switching::SwitchModelConfig switching{};
  bool use_memory_manager = true;
};

struct RuntimeResult {
  /// Virtual-time completion per job (last round fully synchronized).
  std::vector<Time> job_completion;
  /// Virtual-time makespan.
  Time makespan = 0.0;
  /// Σ w_n C_n and Σ w_n (C_n - a_n) over virtual time.
  double weighted_completion = 0.0;
  double weighted_jct = 0.0;
  /// Cross-job switches observed, and speculative-memory hits among them.
  std::size_t switch_count = 0;
  std::size_t resident_hits = 0;
};

class ExecutorRuntime {
 public:
  ExecutorRuntime(const cluster::Cluster& cluster,
                  const workload::JobSet& jobs,
                  const profiler::TimeTable& times,
                  RuntimeConfig config = {});

  /// Execute the plan with real threads; blocks until every job finishes.
  [[nodiscard]] RuntimeResult run(const sim::Schedule& schedule);

 private:
  const cluster::Cluster& cluster_;
  const workload::JobSet& jobs_;
  const profiler::TimeTable& times_;
  RuntimeConfig config_;
};

}  // namespace hare::runtime
