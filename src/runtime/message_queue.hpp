// Blocking MPSC message queue used between runtime components.
//
// The prototype's scheduler and executors exchange control messages over
// gRPC (§6); inside one process the same roles are played by these queues:
// executors push gradient-ready messages, the parameter-server hub pops
// them, and shutdown is signalled by closing the queue.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "obs/metrics.hpp"

namespace hare::runtime {

namespace detail {
/// Shared across every MessageQueue instantiation: the instantaneous
/// number of queued control messages in the process.
inline obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge = obs::gauge("runtime.queue_depth");
  return gauge;
}
}  // namespace detail

template <typename Message>
class MessageQueue {
 public:
  /// Push a message; returns false if the queue is already closed.
  bool push(Message message) {
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
    }
    static obs::Counter& pushed = obs::counter("runtime.messages_pushed");
    pushed.add();
    detail::queue_depth_gauge().add(1.0);
    cv_.notify_one();
    return true;
  }

  /// Block until a message or close. nullopt = closed and drained.
  std::optional<Message> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    Message message = std::move(queue_.front());
    queue_.pop_front();
    detail::queue_depth_gauge().add(-1.0);
    return message;
  }

  /// Block until a message, the deadline, or close. nullopt = timed out or
  /// closed-and-drained (check closed() to distinguish).
  std::optional<Message> pop_until(
      std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mutex_);
    cv_.wait_until(lock, deadline,
                   [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    Message message = std::move(queue_.front());
    queue_.pop_front();
    detail::queue_depth_gauge().add(-1.0);
    return message;
  }

  /// Non-blocking variant.
  std::optional<Message> try_pop() {
    std::scoped_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    Message message = std::move(queue_.front());
    queue_.pop_front();
    detail::queue_depth_gauge().add(-1.0);
    return message;
  }

  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

}  // namespace hare::runtime
