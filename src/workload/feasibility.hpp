// Memory feasibility: which GPUs can host a job's tasks at all.
//
// A task's footprint (weights + gradients + optimizer state + batch
// activations + framework reserve) must fit the device memory. Every
// scheduler filters its GPU choices through this predicate — a 2xB0
// Transformer batch, for example, fits a 16 GiB V100 but not an 8 GiB M60.
#pragma once

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "workload/job.hpp"
#include "workload/model_zoo.hpp"

namespace hare::workload {

/// True when one task of `job` fits `gpu`'s device memory.
[[nodiscard]] inline bool task_fits(const Job& job, const cluster::Gpu& gpu) {
  return task_memory_footprint(model_spec(job.spec.model),
                               job.effective_batch_size()) <=
         gpu.spec().memory;
}

/// Extend a fitting matrix in place to cover jobs appended since it was
/// built: rows [fits.size(), jobs.job_count()) are filled, existing rows
/// are untouched. Growing a matrix incrementally and building it fresh use
/// the same arithmetic, so they agree bit for bit. Throws if an appended
/// job fits nowhere.
inline void append_fitting_rows(const cluster::Cluster& cluster,
                                const JobSet& jobs,
                                std::vector<std::vector<char>>& fits) {
  const std::size_t old_jobs = fits.size();
  fits.resize(jobs.job_count());
  for (std::size_t j = old_jobs; j < fits.size(); ++j) {
    const Job& job = jobs.job(JobId(static_cast<int>(j)));
    auto& row = fits[j];
    row.resize(cluster.gpu_count());
    // The footprint depends only on the job; hoist it out of the GPU loop
    // so the matrix build is one compare per (job, gpu).
    const auto footprint = task_memory_footprint(model_spec(job.spec.model),
                                                 job.effective_batch_size());
    bool any = false;
    for (const auto& gpu : cluster.gpus()) {
      const bool ok = footprint <= gpu.spec().memory;
      row[static_cast<std::size_t>(gpu.id.value())] = ok ? 1 : 0;
      any = any || ok;
    }
    HARE_CHECK_MSG(any, "job " << job.id << " (" << job.spec.name
                               << ") fits no GPU in the cluster");
  }
}

/// Per-job bitmap over the cluster's GPUs; throws if some job fits nowhere.
[[nodiscard]] inline std::vector<std::vector<char>> fitting_matrix(
    const cluster::Cluster& cluster, const JobSet& jobs) {
  std::vector<std::vector<char>> fits;
  append_fitting_rows(cluster, jobs, fits);
  return fits;
}

}  // namespace hare::workload
