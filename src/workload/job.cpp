#include "workload/job.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hare::workload {

JobId JobSet::add_job(JobSpec spec) {
  HARE_CHECK_MSG(spec.rounds >= 1, "a job needs at least one round");
  HARE_CHECK_MSG(spec.tasks_per_round >= 1,
                 "a round needs at least one task");
  HARE_CHECK_MSG(spec.batches_per_task >= 1,
                 "a task trains at least one batch");
  HARE_CHECK_MSG(spec.weight > 0.0, "job weight must be positive");
  HARE_CHECK_MSG(spec.arrival >= 0.0, "arrival time must be non-negative");

  Job job;
  job.id = JobId(static_cast<JobId::underlying_type>(jobs_.size()));
  job.spec = std::move(spec);
  job.first_task = TaskId(static_cast<TaskId::underlying_type>(tasks_.size()));
  for (std::uint32_t r = 0; r < job.spec.rounds; ++r) {
    for (std::uint32_t k = 0; k < job.spec.tasks_per_round; ++k) {
      Task task;
      task.id = TaskId(static_cast<TaskId::underlying_type>(tasks_.size()));
      task.job = job.id;
      task.round = static_cast<RoundIndex>(r);
      task.slot = k;
      tasks_.push_back(task);
    }
  }
  jobs_.push_back(std::move(job));
  return jobs_.back().id;
}

const Job& JobSet::job(JobId id) const {
  HARE_CHECK_MSG(id.valid() && static_cast<std::size_t>(id.value()) < jobs_.size(),
                 "job id out of range: " << id);
  return jobs_[static_cast<std::size_t>(id.value())];
}

const Task& JobSet::task(TaskId id) const {
  HARE_CHECK_MSG(
      id.valid() && static_cast<std::size_t>(id.value()) < tasks_.size(),
      "task id out of range: " << id);
  return tasks_[static_cast<std::size_t>(id.value())];
}

TaskIdRange JobSet::round_tasks(JobId job_id, RoundIndex round) const {
  const Job& j = job(job_id);
  HARE_CHECK_MSG(round >= 0 && static_cast<std::uint32_t>(round) < j.rounds(),
                 "round out of range for job " << job_id << ": " << round);
  return TaskIdRange(j.task_at(static_cast<std::uint32_t>(round), 0),
                     j.tasks_per_round());
}

Time JobSet::earliest_arrival() const {
  if (jobs_.empty()) return 0.0;
  Time earliest = jobs_.front().spec.arrival;
  for (const auto& j : jobs_) earliest = std::min(earliest, j.spec.arrival);
  return earliest;
}

double JobSet::total_weight() const {
  double sum = 0.0;
  for (const auto& j : jobs_) sum += j.spec.weight;
  return sum;
}

}  // namespace hare::workload
