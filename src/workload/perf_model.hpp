// Analytic performance model: per-(model, GPU) batch training time and
// per-worker parameter-server synchronization time.
//
// This stands in for the paper's testbed profiler. Batch time is
// roofline-style:
//
//   t_batch = max( compute_time, input_pipeline_time )
//   compute_time = batch * gflops_per_sample / (peak_tflops * eff(arch, family))
//
// where eff(arch, family) is a calibrated achieved-fraction-of-peak table
// reproducing the measured speedups of Fig 2 (e.g. ConvNets reach ~40% of
// V100 peak but only ~20% of K80 peak, giving the observed 7x; graph models
// are input-bound, capping their speedup near 2x on any GPU — Fig 3).
//
// Sync time follows the PS scheme: each worker pushes its gradient and
// pulls the updated model (2 x parameter bytes) over its machine uplink,
// plus a fixed RPC/aggregation latency. The paper assumes training time
// exceeds sync time (§5.1); tests assert the model satisfies this for the
// Table 2 workload on a 25 Gbps fabric.
#pragma once

#include <cstdint>

#include "cluster/gpu.hpp"
#include "common/types.hpp"
#include "workload/model_zoo.hpp"

namespace hare::workload {

struct PerfModelConfig {
  /// Fixed per-round RPC + aggregation latency on the PS path (seconds).
  Time sync_latency_s = 0.010;
  /// Gradient payload scale (1.0 = raw fp32 push + pull).
  double sync_volume_factor = 1.0;
};

class PerfModel {
 public:
  PerfModel() = default;
  explicit PerfModel(PerfModelConfig config) : config_(config) {}

  /// Achieved fraction of peak FP32 for a family on an architecture.
  [[nodiscard]] static double efficiency(cluster::GpuArch arch,
                                         ModelFamily family);

  /// GPU compute time for one mini-batch (excludes input pipeline).
  [[nodiscard]] Time compute_time(ModelType model, cluster::GpuType gpu,
                                  std::uint32_t batch_size) const;

  /// Host-side input pipeline time for one mini-batch.
  [[nodiscard]] Time input_time(ModelType model,
                                std::uint32_t batch_size) const;

  /// One mini-batch of training: max(compute, input pipeline).
  [[nodiscard]] Time batch_time(ModelType model, cluster::GpuType gpu,
                                std::uint32_t batch_size) const;

  /// T^c_{i,m}: a task trains `batches_per_task` consecutive mini-batches.
  [[nodiscard]] Time task_compute_time(ModelType model, cluster::GpuType gpu,
                                       std::uint32_t batch_size,
                                       std::uint32_t batches_per_task) const;

  /// T^s_{i,m}: gradient push + model pull over `network_gbps` (Gbit/s),
  /// plus fixed latency. Independent of GPU type but dependent on the
  /// hosting machine's uplink, matching the paper's "synchronization time
  /// differs across GPUs because network condition changes".
  [[nodiscard]] Time sync_time(ModelType model, double network_gbps) const;

  /// Speedup of `gpu` over the K80 baseline for one batch (Fig 2).
  [[nodiscard]] double speedup_vs_k80(ModelType model, cluster::GpuType gpu,
                                      std::uint32_t batch_size) const;

  /// Average GPU utilization while a batch trains: compute_time /
  /// batch_time (input-bound models leave the GPU idle — Fig 3).
  [[nodiscard]] double gpu_utilization(ModelType model, cluster::GpuType gpu,
                                       std::uint32_t batch_size) const;

  [[nodiscard]] const PerfModelConfig& config() const { return config_; }

 private:
  PerfModelConfig config_{};
};

}  // namespace hare::workload
