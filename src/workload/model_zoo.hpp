// Deep-learning model catalogue (paper Table 2 + ResNet152 from §2.2).
//
// The real system profiles each (model, GPU) pair by training a few
// mini-batches on the testbed. Offline we replace the measurement with an
// analytic description per model: training FLOPs per sample, parameter
// bytes (drives PS sync traffic, pipelined transfer, and GPU memory),
// activation bytes (drives the memory footprint and early-cleaning
// behaviour), an input-pipeline cost per sample (CPU-side preprocessing
// that caps speedup for input-bound models such as GraphSAGE, Fig 2/3),
// and the layer count used by the pipelined model-transfer model (§4).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace hare::workload {

/// Model family; the performance model keys architecture-efficiency by
/// family (convolution-heavy vs attention vs recurrent vs graph kernels).
enum class ModelFamily : std::uint8_t { ConvNet, Transformer, Recurrent, Graph };

/// Job category used for the workload mix (Table 2: CV/NLP/Speech/Rec.).
enum class JobCategory : std::uint8_t { CV, NLP, Speech, Rec };

enum class ModelType : std::uint8_t {
  VGG19,
  ResNet50,
  InceptionV3,
  BertBase,
  Transformer,
  DeepSpeech,
  FastGCN,
  GraphSAGE,
  ResNet152,  // motivation experiments (Figs 5-6); not in the Table 2 mix
};

inline constexpr std::size_t kModelCount = 9;
/// Models participating in the Table 2 workload mix (excludes ResNet152).
inline constexpr std::size_t kWorkloadModelCount = 8;

struct ModelSpec {
  ModelType type{};
  ModelFamily family{};
  JobCategory category{};
  std::string_view name;
  std::string_view dataset;
  std::uint32_t default_batch_size = 0;   ///< Table 2 batch size
  double train_gflops_per_sample = 0.0;   ///< fwd+bwd FLOPs, in GFLOP
  Bytes parameter_bytes = 0;              ///< fp32 weights
  Bytes activation_bytes_per_sample = 0;  ///< intermediate tensors
  /// CPU-side input pipeline (decode/augment/sample) seconds per sample;
  /// lower-bounds batch time regardless of GPU speed.
  Time input_pipeline_s_per_sample = 0.0;
  std::uint32_t layer_count = 0;  ///< granularity of pipelined transfer
  /// Representative number of training rounds for a job of this model in
  /// the downscaled workloads (§7.1 downscales SQuAD/WMT16 so jobs finish
  /// within hours; we scale further so simulations finish in minutes).
  std::uint32_t typical_rounds = 0;
};

[[nodiscard]] const ModelSpec& model_spec(ModelType type);
[[nodiscard]] std::string_view model_name(ModelType type);
[[nodiscard]] std::string_view job_category_name(JobCategory category);

/// All models, catalogue order.
[[nodiscard]] const std::array<ModelType, kModelCount>& all_models();
/// The 8 workload-mix models of Table 2.
[[nodiscard]] const std::array<ModelType, kWorkloadModelCount>&
workload_models();

/// Total GPU memory footprint of a training task: weights + gradients +
/// optimizer state (SGD w/ momentum: 1 extra copy) + activations for the
/// batch + framework overhead.
[[nodiscard]] Bytes task_memory_footprint(const ModelSpec& spec,
                                          std::uint32_t batch_size);

/// Model-state-only footprint (what speculative memory management keeps
/// resident between a job's rounds: weights + optimizer state).
[[nodiscard]] Bytes model_state_bytes(const ModelSpec& spec);

}  // namespace hare::workload
