// Workload trace synthesis (stand-in for the Google cluster trace, §7.1).
//
// Arrival times come from a two-state Markov-modulated Poisson process
// (quiet / burst), matching the bursty shape of the Google trace the paper
// replays. Job parameters (model, sync scale, rounds, weight) are drawn
// from a configurable mix; the default mix is Table 2's 25% CV / 25% NLP /
// 25% Speech / 25% Rec split. Everything is driven by a seeded Rng, and
// traces round-trip through a plain-text format so experiments can be
// re-run bit-identically from a saved file.
#pragma once

#include <array>
#include <iosfwd>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/job.hpp"
#include "workload/model_zoo.hpp"

namespace hare::workload {

/// Fractions per job category (CV, NLP, Speech, Rec); needs not be
/// normalized. Fig 17 raises one class's share while keeping the others.
struct WorkloadMix {
  std::array<double, 4> category_weight = {1.0, 1.0, 1.0, 1.0};

  [[nodiscard]] static WorkloadMix uniform() { return {}; }
  [[nodiscard]] static WorkloadMix favour(JobCategory category, double share);
};

struct TraceConfig {
  std::size_t job_count = 100;
  WorkloadMix mix{};

  /// Mean arrival rate (jobs/second) in the quiet state.
  double base_arrival_rate = 0.05;
  /// Burst multiplier and burst dwell probability of the MMPP.
  double burst_rate_multiplier = 6.0;
  double burst_probability = 0.15;
  double mean_burst_length = 5.0;  ///< jobs per burst on average

  /// Deterministic on/off duty cycle (seconds). When both are > 0 the
  /// stochastic per-job burst draws are replaced by a fixed schedule:
  /// arrivals whose clock falls inside the first `burst_on_period` seconds
  /// of each on+off window come at the burst rate. 0 keeps the MMPP.
  double burst_on_period = 0.0;
  double burst_off_period = 0.0;

  /// Sync scales (|D_r|) to draw from, with weights.
  std::array<std::uint32_t, 4> sync_scales = {1, 2, 4, 8};
  std::array<double, 4> sync_scale_weight = {0.25, 0.35, 0.25, 0.15};

  /// Job rounds = model typical_rounds scaled by U[min,max].
  double rounds_scale_min = 0.5;
  double rounds_scale_max = 1.5;

  /// Job weights drawn uniformly from {1, 2, 4} with these odds; all-equal
  /// by default (the paper's objective is weighted; weights default to 1).
  std::array<double, 3> weight_odds = {1.0, 0.0, 0.0};

  /// Global batch-size multiplier (Fig 19; 1.0 = Table 2 defaults = B0).
  double batch_scale = 1.0;

  std::uint32_t batches_per_task = 20;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Synthesize a JobSet according to `config`.
  [[nodiscard]] JobSet generate(const TraceConfig& config);

 private:
  friend class TraceStream;

  /// Draw one job's spec, threading the MMPP state; generate() and
  /// TraceStream both run this exact sequence, so a streamed trace is
  /// bit-identical to a materialized one from the same seed.
  JobSpec next_spec(const TraceConfig& config, std::size_t index, Time& clock,
                    bool& bursting, std::size_t& burst_remaining);
  ModelType draw_model(const WorkloadMix& mix);
  common::Rng rng_;
};

/// Pull-based arrival stream: yields the same job sequence
/// TraceGenerator(seed).generate(config) would materialize, one JobSpec at
/// a time, so a serving front-end (or a 100k-job shard sweep) can admit
/// arrivals without ever holding the whole JobSet in memory.
class TraceStream {
 public:
  TraceStream(std::uint64_t seed, const TraceConfig& config);

  /// True once config.job_count specs have been drawn.
  [[nodiscard]] bool exhausted() const { return index_ >= config_.job_count; }

  /// Number of specs drawn so far (equals the next spec's index).
  [[nodiscard]] std::size_t drawn() const { return index_; }

  [[nodiscard]] const TraceConfig& config() const { return config_; }

  /// Draw the next job spec; arrivals are nondecreasing across calls.
  /// Throws once the stream is exhausted.
  [[nodiscard]] JobSpec next();

 private:
  TraceConfig config_;
  TraceGenerator generator_;
  Time clock_ = 0.0;
  bool bursting_ = false;
  std::size_t burst_remaining_ = 0;
  std::size_t index_ = 0;
};

/// Plain-text trace serialization: one header line, then one line per job
/// `model arrival weight rounds tasks_per_round batch_size batches_per_task`.
void save_trace(const JobSet& jobs, std::ostream& os);
[[nodiscard]] JobSet load_trace(std::istream& is);
void save_trace_file(const JobSet& jobs, const std::string& path);
[[nodiscard]] JobSet load_trace_file(const std::string& path);

}  // namespace hare::workload
