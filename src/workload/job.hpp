// Jobs, rounds, tasks (§5.1 problem structure).
//
// A job n has arrival time a_n, weight w_n, and R_n training rounds. Every
// round launches the same fixed number of tasks |D_r| (the job's
// synchronization scale, fixed per the scale-fixed scheme of §2.2.3); each
// task trains `batches_per_task` mini-batches and then synchronizes
// gradients through the job's parameter server. Round r+1 may only start
// after every task of round r has finished and synchronized (constraint 7).
//
// `JobSet` owns the jobs and a flattened task table with global `TaskId`s;
// schedulers and the simulator index tasks through it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workload/model_zoo.hpp"

namespace hare::workload {

struct JobSpec {
  ModelType model = ModelType::ResNet50;
  Time arrival = 0.0;
  double weight = 1.0;
  std::uint32_t rounds = 1;           ///< |R_n|
  std::uint32_t tasks_per_round = 1;  ///< |D_r|, the synchronization scale
  std::uint32_t batch_size = 0;       ///< 0 = model default (Table 2)
  std::uint32_t batches_per_task = 20;
  std::string name;  ///< optional human label
};

struct Job {
  JobId id;
  JobSpec spec;
  /// Global ids of this job's tasks, round-major
  /// (`tasks[r * tasks_per_round + k]` = slot k of round r).
  std::vector<TaskId> tasks;

  [[nodiscard]] std::uint32_t rounds() const { return spec.rounds; }
  [[nodiscard]] std::uint32_t tasks_per_round() const {
    return spec.tasks_per_round;
  }
  [[nodiscard]] std::size_t task_count() const { return tasks.size(); }
  [[nodiscard]] std::uint32_t effective_batch_size() const {
    return spec.batch_size != 0 ? spec.batch_size
                                : model_spec(spec.model).default_batch_size;
  }
};

struct Task {
  TaskId id;
  JobId job;
  RoundIndex round = 0;
  std::uint32_t slot = 0;  ///< position within the round, [0, |D_r|)
};

class JobSet {
 public:
  JobSet() = default;

  /// Append a job; validates the spec. Returns the new job's id.
  JobId add_job(JobSpec spec);

  /// Drop every job and task, keeping the vectors' capacity — arena-style
  /// reuse for the per-shard planners that rebuild a local sub-jobset per
  /// plan.
  void clear() {
    jobs_.clear();
    tasks_.clear();
  }

  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }

  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  /// Tasks of one round of one job.
  [[nodiscard]] std::span<const TaskId> round_tasks(JobId job,
                                                    RoundIndex round) const;

  /// Earliest arrival across jobs (0 when empty).
  [[nodiscard]] Time earliest_arrival() const;

  /// Sum of weights (normalization for weighted JCT reports).
  [[nodiscard]] double total_weight() const;

 private:
  std::vector<Job> jobs_;
  std::vector<Task> tasks_;
};

}  // namespace hare::workload
