// Jobs, rounds, tasks (§5.1 problem structure).
//
// A job n has arrival time a_n, weight w_n, and R_n training rounds. Every
// round launches the same fixed number of tasks |D_r| (the job's
// synchronization scale, fixed per the scale-fixed scheme of §2.2.3); each
// task trains `batches_per_task` mini-batches and then synchronizes
// gradients through the job's parameter server. Round r+1 may only start
// after every task of round r has finished and synchronized (constraint 7).
//
// `JobSet` owns the jobs and a flattened task table with global `TaskId`s;
// schedulers and the simulator index tasks through it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workload/model_zoo.hpp"

namespace hare::workload {

/// Contiguous range of global TaskIds. `JobSet::add_job` assigns a job's
/// task ids consecutively in round-major order, so a job's tasks (and any
/// round slice of them) are described by a base id plus a count — no
/// per-job id array needed. Iterates by value; supports the span-like
/// subset the schedulers use.
class TaskIdRange {
 public:
  class iterator {
   public:
    using value_type = TaskId;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    explicit iterator(TaskId::underlying_type value) : value_(value) {}
    TaskId operator*() const { return TaskId(value_); }
    iterator& operator++() {
      ++value_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++value_;
      return copy;
    }
    friend bool operator==(iterator, iterator) = default;

   private:
    TaskId::underlying_type value_ = 0;
  };

  TaskIdRange() = default;
  TaskIdRange(TaskId first, std::size_t count)
      : first_(first.value()), count_(count) {}

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] TaskId operator[](std::size_t i) const {
    return TaskId(first_ + static_cast<TaskId::underlying_type>(i));
  }
  [[nodiscard]] TaskId front() const { return TaskId(first_); }
  [[nodiscard]] TaskId back() const { return (*this)[count_ - 1]; }
  [[nodiscard]] iterator begin() const { return iterator(first_); }
  [[nodiscard]] iterator end() const {
    return iterator(first_ + static_cast<TaskId::underlying_type>(count_));
  }

 private:
  TaskId::underlying_type first_ = 0;
  std::size_t count_ = 0;
};

struct JobSpec {
  ModelType model = ModelType::ResNet50;
  Time arrival = 0.0;
  double weight = 1.0;
  std::uint32_t rounds = 1;           ///< |R_n|
  std::uint32_t tasks_per_round = 1;  ///< |D_r|, the synchronization scale
  std::uint32_t batch_size = 0;       ///< 0 = model default (Table 2)
  std::uint32_t batches_per_task = 20;
  std::string name;  ///< optional human label
};

struct Job {
  JobId id;
  JobSpec spec;
  /// Global id of this job's first task. Task ids are consecutive and
  /// round-major, so slot k of round r is `first_task + r*tasks_per_round
  /// + k` — a base id replaces the old per-job id vector (struct-of-arrays
  /// layout: no per-job heap allocation, 100k-job sets build without 100k
  /// mallocs).
  TaskId first_task{};

  [[nodiscard]] std::uint32_t rounds() const { return spec.rounds; }
  [[nodiscard]] std::uint32_t tasks_per_round() const {
    return spec.tasks_per_round;
  }
  [[nodiscard]] std::size_t task_count() const {
    return static_cast<std::size_t>(spec.rounds) * spec.tasks_per_round;
  }
  /// Global id of task (round, slot).
  [[nodiscard]] TaskId task_at(std::uint32_t round, std::uint32_t slot) const {
    return TaskId(first_task.value() +
                  static_cast<TaskId::underlying_type>(
                      round * spec.tasks_per_round + slot));
  }
  /// All of this job's task ids, round-major.
  [[nodiscard]] TaskIdRange task_ids() const {
    return TaskIdRange(first_task, task_count());
  }
  [[nodiscard]] std::uint32_t effective_batch_size() const {
    return spec.batch_size != 0 ? spec.batch_size
                                : model_spec(spec.model).default_batch_size;
  }
};

struct Task {
  TaskId id;
  JobId job;
  RoundIndex round = 0;
  std::uint32_t slot = 0;  ///< position within the round, [0, |D_r|)
};

class JobSet {
 public:
  JobSet() = default;

  /// Append a job; validates the spec. Returns the new job's id.
  JobId add_job(JobSpec spec);

  /// Drop every job and task, keeping the vectors' capacity — arena-style
  /// reuse for the per-shard planners that rebuild a local sub-jobset per
  /// plan.
  void clear() {
    jobs_.clear();
    tasks_.clear();
  }

  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }

  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  /// Tasks of one round of one job.
  [[nodiscard]] TaskIdRange round_tasks(JobId job, RoundIndex round) const;

  /// Earliest arrival across jobs (0 when empty).
  [[nodiscard]] Time earliest_arrival() const;

  /// Sum of weights (normalization for weighted JCT reports).
  [[nodiscard]] double total_weight() const;

 private:
  std::vector<Job> jobs_;
  std::vector<Task> tasks_;
};

}  // namespace hare::workload
