#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace hare::workload {

WorkloadMix WorkloadMix::favour(JobCategory category, double share) {
  HARE_CHECK_MSG(share > 0.0 && share < 1.0,
                 "favoured share must be in (0, 1)");
  WorkloadMix mix;
  const double rest = (1.0 - share) / 3.0;
  for (auto& w : mix.category_weight) w = rest;
  mix.category_weight[static_cast<std::size_t>(category)] = share;
  return mix;
}

ModelType TraceGenerator::draw_model(const WorkloadMix& mix) {
  // First pick a category by weight, then a model uniformly inside it.
  double total = 0.0;
  for (double w : mix.category_weight) total += w;
  HARE_CHECK_MSG(total > 0.0, "workload mix weights must not all be zero");
  double r = rng_.uniform() * total;
  std::size_t category = 0;
  for (; category + 1 < mix.category_weight.size(); ++category) {
    if (r < mix.category_weight[category]) break;
    r -= mix.category_weight[category];
  }

  std::vector<ModelType> members;
  for (ModelType m : workload_models()) {
    if (static_cast<std::size_t>(model_spec(m).category) == category) {
      members.push_back(m);
    }
  }
  HARE_CHECK_MSG(!members.empty(), "category has no models");
  return members[rng_.uniform_int(members.size())];
}

JobSpec TraceGenerator::next_spec(const TraceConfig& config, std::size_t index,
                                  Time& clock, bool& bursting,
                                  std::size_t& burst_remaining) {
  // Two-state MMPP: occasionally enter a burst whose arrivals come at
  // burst_rate_multiplier times the base rate for ~mean_burst_length jobs.
  // A configured on/off duty cycle replaces the stochastic burst draws with
  // a fixed schedule keyed off the arrival clock.
  const bool duty_cycle =
      config.burst_on_period > 0.0 && config.burst_off_period > 0.0;
  if (duty_cycle) {
    const double period = config.burst_on_period + config.burst_off_period;
    bursting = std::fmod(clock, period) < config.burst_on_period;
  } else if (!bursting && rng_.bernoulli(config.burst_probability)) {
    bursting = true;
    burst_remaining = 1 + static_cast<std::size_t>(rng_.exponential(
                              1.0 / std::max(1.0, config.mean_burst_length)));
  }
  const double rate = bursting ? config.base_arrival_rate *
                                     config.burst_rate_multiplier
                               : config.base_arrival_rate;
  clock += rng_.exponential(rate);
  if (!duty_cycle && bursting && --burst_remaining == 0) bursting = false;

  JobSpec spec;
  spec.model = draw_model(config.mix);
  spec.arrival = clock;

  // Sync scale |D_r|.
  double scale_total = 0.0;
  for (double w : config.sync_scale_weight) scale_total += w;
  double r = rng_.uniform() * scale_total;
  std::size_t pick = 0;
  for (; pick + 1 < config.sync_scales.size(); ++pick) {
    if (r < config.sync_scale_weight[pick]) break;
    r -= config.sync_scale_weight[pick];
  }
  spec.tasks_per_round = config.sync_scales[pick];

  const ModelSpec& model = model_spec(spec.model);
  const double rounds_scale =
      rng_.uniform(config.rounds_scale_min, config.rounds_scale_max);
  spec.rounds = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             static_cast<double>(model.typical_rounds) * rounds_scale));

  double odds_total = 0.0;
  for (double w : config.weight_odds) odds_total += w;
  double wr = rng_.uniform() * odds_total;
  if (wr < config.weight_odds[0]) {
    spec.weight = 1.0;
  } else if (wr < config.weight_odds[0] + config.weight_odds[1]) {
    spec.weight = 2.0;
  } else {
    spec.weight = 4.0;
  }

  spec.batch_size = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             static_cast<double>(model.default_batch_size) *
             config.batch_scale));
  spec.batches_per_task = config.batches_per_task;
  spec.name = std::string(model.name) + "-" + std::to_string(index);
  return spec;
}

JobSet TraceGenerator::generate(const TraceConfig& config) {
  HARE_CHECK_MSG(config.job_count > 0, "trace needs at least one job");
  HARE_CHECK_MSG(config.base_arrival_rate > 0.0,
                 "arrival rate must be positive");

  JobSet jobs;
  Time clock = 0.0;
  bool bursting = false;
  std::size_t burst_remaining = 0;
  for (std::size_t i = 0; i < config.job_count; ++i) {
    jobs.add_job(next_spec(config, i, clock, bursting, burst_remaining));
  }
  return jobs;
}

TraceStream::TraceStream(std::uint64_t seed, const TraceConfig& config)
    : config_(config), generator_(seed) {
  HARE_CHECK_MSG(config.job_count > 0, "trace needs at least one job");
  HARE_CHECK_MSG(config.base_arrival_rate > 0.0,
                 "arrival rate must be positive");
}

JobSpec TraceStream::next() {
  HARE_CHECK_MSG(!exhausted(), "trace stream exhausted after "
                                   << config_.job_count << " jobs");
  return generator_.next_spec(config_, index_++, clock_, bursting_,
                              burst_remaining_);
}

namespace {
constexpr std::string_view kTraceHeader = "hare-trace-v1";
}

void save_trace(const JobSet& jobs, std::ostream& os) {
  os << kTraceHeader << ' ' << jobs.job_count() << '\n';
  os.precision(17);
  for (const auto& job : jobs.jobs()) {
    const auto& s = job.spec;
    os << static_cast<int>(s.model) << ' ' << s.arrival << ' ' << s.weight
       << ' ' << s.rounds << ' ' << s.tasks_per_round << ' ' << s.batch_size
       << ' ' << s.batches_per_task << ' '
       << (s.name.empty() ? "-" : s.name) << '\n';
  }
}

JobSet load_trace(std::istream& is) {
  std::string header;
  std::size_t count = 0;
  is >> header >> count;
  HARE_CHECK_MSG(header == kTraceHeader, "not a hare trace (bad header)");
  JobSet jobs;
  for (std::size_t i = 0; i < count; ++i) {
    int model = 0;
    JobSpec spec;
    is >> model >> spec.arrival >> spec.weight >> spec.rounds >>
        spec.tasks_per_round >> spec.batch_size >> spec.batches_per_task >>
        spec.name;
    HARE_CHECK_MSG(static_cast<bool>(is), "truncated trace at job " << i);
    HARE_CHECK_MSG(model >= 0 && static_cast<std::size_t>(model) < kModelCount,
                   "trace references unknown model " << model);
    spec.model = static_cast<ModelType>(model);
    if (spec.name == "-") spec.name.clear();
    jobs.add_job(std::move(spec));
  }
  return jobs;
}

void save_trace_file(const JobSet& jobs, const std::string& path) {
  std::ofstream os(path);
  HARE_CHECK_MSG(os.good(), "cannot open trace file for writing: " << path);
  save_trace(jobs, os);
}

JobSet load_trace_file(const std::string& path) {
  std::ifstream is(path);
  HARE_CHECK_MSG(is.good(), "cannot open trace file: " << path);
  return load_trace(is);
}

}  // namespace hare::workload
