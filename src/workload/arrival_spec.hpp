// Arrival-burstiness spec strings (the remaining half of ROADMAP item 5).
//
// Same WiredTiger-style `key=value,key=value` grammar as fault specs
// (fault/fault_spec.hpp): the whole arrival process of a scenario — Poisson
// rate, burst factor, stochastic burst shape or deterministic on/off
// periods — is one copy-pastable string, so the serving front-end and the
// scenario harness grow arrival variants without new C++. Unknown keys and
// malformed or out-of-range values throw hare::common::Error, exactly like
// fault specs.
//
//   "jobs=500,rate=0.5,burst=8,burst_prob=0.2,burst_len=10"
//   "jobs=200,rate=2,burst=5,on_period=30,off_period=90"
//
// Keys (all optional; defaults = TraceConfig defaults):
//   jobs=N          job count of the stream
//   rate=R          quiet-state Poisson arrival rate, jobs/s (> 0)
//   burst=X         burst rate multiplier (>= 1)
//   burst_prob=P    per-arrival probability of entering a burst ([0, 1])
//   burst_len=L     mean jobs per burst (> 0)
//   on_period=S     deterministic burst window, seconds (with off_period)
//   off_period=S    deterministic quiet window, seconds (with on_period)
//   rounds_min=F    lower rounds scale (0 < rounds_min <= rounds_max)
//   rounds_max=F    upper rounds scale
//   batch_scale=F   global batch-size multiplier (> 0)
#pragma once

#include <string_view>

#include "workload/trace.hpp"

namespace hare::workload {

/// Parse an arrival spec on top of default TraceConfig values. Unknown
/// keys, malformed or out-of-range values, duplicate keys, dangling
/// separators, and the empty string throw common::Error naming the
/// offending fragment.
[[nodiscard]] TraceConfig parse_arrival_spec(std::string_view text);

}  // namespace hare::workload
