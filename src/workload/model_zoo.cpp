#include "workload/model_zoo.hpp"

#include "common/error.hpp"

namespace hare::workload {

namespace {

constexpr Bytes MB = 1024ull * 1024ull;

// Calibration: GFLOPs are chosen so that per-batch training times on a K80
// (the paper's Fig 2 baseline) land at realistic magnitudes, and the
// family-efficiency table in perf_model.cpp then reproduces the measured
// speedup matrix of Fig 2 (ResNet50: ~2x on T4 / ~7x on V100; GraphSAGE
// capped near 2x on any GPU by its input pipeline). Parameter counts are
// the published model sizes.
constexpr std::array<ModelSpec, kModelCount> kZoo = {{
    {ModelType::VGG19, ModelFamily::ConvNet, JobCategory::CV, "VGG19",
     "Cifar10", 128, 3.755, 575 * MB, 10 * MB, 0.00020, 19, 30},
    {ModelType::ResNet50, ModelFamily::ConvNet, JobCategory::CV, "ResNet50",
     "Cifar100", 64, 8.19, 102 * MB, 20 * MB, 0.00020, 50, 35},
    {ModelType::InceptionV3, ModelFamily::ConvNet, JobCategory::CV,
     "InceptionV3", "Cifar100", 32, 13.66, 95 * MB, 15 * MB, 0.00020, 48, 30},
    {ModelType::BertBase, ModelFamily::Transformer, JobCategory::NLP,
     "Bert_base", "SQuAD", 32, 65.55, 440 * MB, 40 * MB, 0.00010, 14, 60},
    {ModelType::Transformer, ModelFamily::Transformer, JobCategory::NLP,
     "Transformer", "WMT16", 128, 12.29, 260 * MB, 30 * MB, 0.00010, 12, 50},
    {ModelType::DeepSpeech, ModelFamily::Recurrent, JobCategory::Speech,
     "DeepSpeech", "ComVoice", 8, 109.25, 152 * MB, 50 * MB, 0.00500, 9, 40},
    {ModelType::FastGCN, ModelFamily::Graph, JobCategory::Rec, "FastGCN",
     "Cora", 128, 0.6828, 2 * MB, 2 * MB, 0.0003125, 2, 20},
    {ModelType::GraphSAGE, ModelFamily::Graph, JobCategory::Rec, "GraphSAGE",
     "Cora", 16, 4.37, 2 * MB, 4 * MB, 0.00250, 2, 20},
    {ModelType::ResNet152, ModelFamily::ConvNet, JobCategory::CV, "ResNet152",
     "ImageNet-100", 32, 49.2, 241 * MB, 45 * MB, 0.00020, 152, 40},
}};

constexpr std::array<ModelType, kModelCount> kAllModels = {
    ModelType::VGG19,      ModelType::ResNet50,   ModelType::InceptionV3,
    ModelType::BertBase,   ModelType::Transformer, ModelType::DeepSpeech,
    ModelType::FastGCN,    ModelType::GraphSAGE,  ModelType::ResNet152};

constexpr std::array<ModelType, kWorkloadModelCount> kWorkloadModels = {
    ModelType::VGG19,    ModelType::ResNet50,    ModelType::InceptionV3,
    ModelType::BertBase, ModelType::Transformer, ModelType::DeepSpeech,
    ModelType::FastGCN,  ModelType::GraphSAGE};

}  // namespace

const ModelSpec& model_spec(ModelType type) {
  const auto index = static_cast<std::size_t>(type);
  HARE_CHECK_MSG(index < kZoo.size(), "unknown model type");
  return kZoo[index];
}

std::string_view model_name(ModelType type) { return model_spec(type).name; }

std::string_view job_category_name(JobCategory category) {
  switch (category) {
    case JobCategory::CV: return "CV";
    case JobCategory::NLP: return "NLP";
    case JobCategory::Speech: return "Speech";
    case JobCategory::Rec: return "Rec";
  }
  return "?";
}

const std::array<ModelType, kModelCount>& all_models() { return kAllModels; }

const std::array<ModelType, kWorkloadModelCount>& workload_models() {
  return kWorkloadModels;
}

Bytes task_memory_footprint(const ModelSpec& spec, std::uint32_t batch_size) {
  // Weights + gradients + SGD momentum, activations for the whole batch,
  // plus a flat framework/CUDA allocator reserve.
  constexpr Bytes kFrameworkReserve = 512ull * MB;
  return 3 * spec.parameter_bytes +
         static_cast<Bytes>(batch_size) * spec.activation_bytes_per_sample +
         kFrameworkReserve;
}

Bytes model_state_bytes(const ModelSpec& spec) {
  // What persists across a job's rounds: weights + optimizer state.
  return 2 * spec.parameter_bytes;
}

}  // namespace hare::workload
