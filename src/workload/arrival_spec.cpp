#include "workload/arrival_spec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace hare::workload {

namespace {

[[noreturn]] void bad_spec(std::string_view what, std::string_view fragment) {
  std::ostringstream os;
  os << "arrival spec: " << what << " in '" << fragment << "'";
  throw common::Error(os.str());
}

double parse_number(std::string_view text, std::string_view fragment) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc::result_out_of_range) {
    bad_spec("number out of range", fragment);
  }
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    bad_spec("malformed number", fragment);
  }
  if (std::isinf(value)) bad_spec("number out of range", fragment);
  return value;
}

std::size_t parse_count(std::string_view text, std::string_view fragment) {
  const double value = parse_number(text, fragment);
  // Reject magnitudes the long cast below can't represent before casting
  // (the cast itself would be undefined behaviour on overflow).
  if (value >= 9.2e18) bad_spec("number out of range", fragment);
  if (value < 0.0 || value != static_cast<double>(static_cast<long>(value))) {
    bad_spec("expected a non-negative integer", fragment);
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

TraceConfig parse_arrival_spec(std::string_view text) {
  if (text.empty()) bad_spec("empty spec", text);
  TraceConfig config;
  std::vector<std::string_view> seen_keys;
  std::size_t pos = 0;
  bool trailing = false;
  while (pos < text.size() || trailing) {
    // Depth-aware comma scan, matching the fault-spec grammar, so a future
    // nested (...) value stays parseable.
    std::size_t end = pos;
    int depth = 0;
    while (end < text.size() && (text[end] != ',' || depth > 0)) {
      if (text[end] == '(') ++depth;
      if (text[end] == ')') --depth;
      ++end;
    }
    const std::string_view item = text.substr(pos, end - pos);
    trailing = end < text.size();  // a ',' consumed with nothing after it
    pos = end + (trailing ? 1 : 0);
    if (item.empty()) bad_spec("dangling separator", text);

    const auto eq = item.find('=');
    if (eq == std::string_view::npos) bad_spec("expected key=value", item);
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (std::find(seen_keys.begin(), seen_keys.end(), key) !=
        seen_keys.end()) {
      bad_spec("duplicate key", item);
    }
    seen_keys.push_back(key);

    if (key == "jobs") {
      config.job_count = parse_count(value, item);
      if (config.job_count == 0) bad_spec("jobs must be positive", item);
    } else if (key == "rate") {
      config.base_arrival_rate = parse_number(value, item);
      if (config.base_arrival_rate <= 0.0) {
        bad_spec("rate must be positive", item);
      }
    } else if (key == "burst") {
      config.burst_rate_multiplier = parse_number(value, item);
      if (config.burst_rate_multiplier < 1.0) {
        bad_spec("burst multiplier must be >= 1", item);
      }
    } else if (key == "burst_prob") {
      config.burst_probability = parse_number(value, item);
      if (config.burst_probability < 0.0 || config.burst_probability > 1.0) {
        bad_spec("burst_prob must be in [0, 1]", item);
      }
    } else if (key == "burst_len") {
      config.mean_burst_length = parse_number(value, item);
      if (config.mean_burst_length <= 0.0) {
        bad_spec("burst_len must be positive", item);
      }
    } else if (key == "on_period") {
      config.burst_on_period = parse_number(value, item);
      if (config.burst_on_period <= 0.0) {
        bad_spec("on_period must be positive", item);
      }
    } else if (key == "off_period") {
      config.burst_off_period = parse_number(value, item);
      if (config.burst_off_period <= 0.0) {
        bad_spec("off_period must be positive", item);
      }
    } else if (key == "rounds_min") {
      config.rounds_scale_min = parse_number(value, item);
      if (config.rounds_scale_min <= 0.0) {
        bad_spec("rounds_min must be positive", item);
      }
    } else if (key == "rounds_max") {
      config.rounds_scale_max = parse_number(value, item);
      if (config.rounds_scale_max <= 0.0) {
        bad_spec("rounds_max must be positive", item);
      }
    } else if (key == "batch_scale") {
      config.batch_scale = parse_number(value, item);
      if (config.batch_scale <= 0.0) {
        bad_spec("batch_scale must be positive", item);
      }
    } else {
      bad_spec("unknown key", item);
    }
  }
  if ((config.burst_on_period > 0.0) != (config.burst_off_period > 0.0)) {
    bad_spec("on_period and off_period must be set together", text);
  }
  if (config.rounds_scale_min > config.rounds_scale_max) {
    bad_spec("rounds_min exceeds rounds_max", text);
  }
  return config;
}

}  // namespace hare::workload
