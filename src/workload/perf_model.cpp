#include "workload/perf_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hare::workload {

namespace {

constexpr std::size_t kArchCount = 6;
constexpr std::size_t kFamilyCount = 4;

// eff[arch][family]; families: ConvNet, Transformer, Recurrent, Graph.
// Calibrated to the Fig 2 speedup matrix (see perf_model.hpp).
constexpr double kEfficiency[kArchCount][kFamilyCount] = {
    // ConvNet  Transf.  Recur.  Graph
    {0.200, 0.200, 0.200, 0.200},  // Kepler (K80)
    {0.200, 0.200, 0.200, 0.200},  // Maxwell (M60)
    {0.280, 0.300, 0.250, 0.250},  // Pascal (P100)
    {0.400, 0.445, 0.278, 0.300},  // Volta (V100)
    {0.210, 0.268, 0.215, 0.150},  // Turing (T4)
    {0.450, 0.500, 0.320, 0.350},  // Ampere (A100)
};

}  // namespace

double PerfModel::efficiency(cluster::GpuArch arch, ModelFamily family) {
  const auto a = static_cast<std::size_t>(arch);
  const auto f = static_cast<std::size_t>(family);
  HARE_CHECK_MSG(a < kArchCount && f < kFamilyCount,
                 "efficiency table index out of range");
  return kEfficiency[a][f];
}

Time PerfModel::compute_time(ModelType model, cluster::GpuType gpu,
                             std::uint32_t batch_size) const {
  const ModelSpec& m = model_spec(model);
  const cluster::GpuSpec& g = cluster::gpu_spec(gpu);
  const double achieved_tflops =
      g.fp32_tflops * efficiency(g.arch, m.family);
  const double gflops =
      static_cast<double>(batch_size) * m.train_gflops_per_sample;
  return gflops / (achieved_tflops * 1e3);
}

Time PerfModel::input_time(ModelType model, std::uint32_t batch_size) const {
  const ModelSpec& m = model_spec(model);
  return static_cast<double>(batch_size) * m.input_pipeline_s_per_sample;
}

Time PerfModel::batch_time(ModelType model, cluster::GpuType gpu,
                           std::uint32_t batch_size) const {
  return std::max(compute_time(model, gpu, batch_size),
                  input_time(model, batch_size));
}

Time PerfModel::task_compute_time(ModelType model, cluster::GpuType gpu,
                                  std::uint32_t batch_size,
                                  std::uint32_t batches_per_task) const {
  return static_cast<double>(batches_per_task) *
         batch_time(model, gpu, batch_size);
}

Time PerfModel::sync_time(ModelType model, double network_gbps) const {
  HARE_CHECK_MSG(network_gbps > 0.0, "bandwidth must be positive");
  const ModelSpec& m = model_spec(model);
  const double bytes_per_second = network_gbps * 1e9 / 8.0;
  const double volume =
      2.0 * static_cast<double>(m.parameter_bytes) * config_.sync_volume_factor;
  return config_.sync_latency_s + volume / bytes_per_second;
}

double PerfModel::speedup_vs_k80(ModelType model, cluster::GpuType gpu,
                                 std::uint32_t batch_size) const {
  return batch_time(model, cluster::GpuType::K80, batch_size) /
         batch_time(model, gpu, batch_size);
}

double PerfModel::gpu_utilization(ModelType model, cluster::GpuType gpu,
                                  std::uint32_t batch_size) const {
  const Time total = batch_time(model, gpu, batch_size);
  return total > 0.0 ? compute_time(model, gpu, batch_size) / total : 0.0;
}

}  // namespace hare::workload
