#include "cluster/cluster.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <span>

#include "common/error.hpp"

namespace hare::cluster {

const Gpu& Cluster::gpu(GpuId id) const {
  HARE_CHECK_MSG(id.valid() && static_cast<std::size_t>(id.value()) < gpus_.size(),
                 "GPU id out of range: " << id);
  return gpus_[static_cast<std::size_t>(id.value())];
}

const Machine& Cluster::machine(MachineId id) const {
  HARE_CHECK_MSG(
      id.valid() && static_cast<std::size_t>(id.value()) < machines_.size(),
      "machine id out of range: " << id);
  return machines_[static_cast<std::size_t>(id.value())];
}

std::vector<std::pair<GpuType, std::size_t>> Cluster::type_histogram() const {
  std::map<GpuType, std::size_t> counts;
  for (const auto& gpu : gpus_) ++counts[gpu.type];
  return {counts.begin(), counts.end()};
}

double Cluster::peak_speed_ratio() const {
  if (gpus_.empty()) return 1.0;
  double lo = gpus_.front().spec().fp32_tflops;
  double hi = lo;
  for (const auto& gpu : gpus_) {
    lo = std::min(lo, gpu.spec().fp32_tflops);
    hi = std::max(hi, gpu.spec().fp32_tflops);
  }
  return hi / lo;
}

bool Cluster::homogeneous() const {
  return std::all_of(gpus_.begin(), gpus_.end(), [&](const Gpu& g) {
    return g.type == gpus_.front().type;
  });
}

std::size_t Cluster::domain_count() const {
  if (machines_.empty()) return 0;
  std::size_t max_domain = 0;
  for (const auto& m : machines_) max_domain = std::max(max_domain, m.domain);
  return max_domain + 1;
}

void Cluster::set_network_gbps(double gbps) {
  HARE_CHECK_MSG(gbps > 0.0, "bandwidth must be positive");
  for (auto& m : machines_) m.network_gbps = gbps;
}

ClusterBuilder& ClusterBuilder::add_machine(GpuType type, std::size_t count,
                                            double network_gbps,
                                            std::string name,
                                            std::size_t domain) {
  HARE_CHECK_MSG(count > 0, "a machine must host at least one GPU");
  Machine machine;
  machine.id = MachineId(static_cast<MachineId::underlying_type>(
      cluster_.machines_.size()));
  machine.network_gbps = network_gbps;
  machine.domain = domain;
  machine.name = name.empty()
                     ? std::string(gpu_type_name(type)) + "-node-" +
                           std::to_string(machine.id.value())
                     : std::move(name);
  for (std::size_t i = 0; i < count; ++i) {
    Gpu gpu;
    gpu.id = GpuId(static_cast<GpuId::underlying_type>(cluster_.gpus_.size()));
    gpu.machine = machine.id;
    gpu.type = type;
    machine.gpus.push_back(gpu.id);
    cluster_.gpus_.push_back(gpu);
  }
  cluster_.machines_.push_back(std::move(machine));
  return *this;
}

Cluster make_testbed_cluster(double network_gbps) {
  // 4 EC2 instances: p3.16xlarge (8×V100), g4dn.12xlarge (4×T4),
  // p2.xlarge (1×K80), g3.8xlarge (2×M60).
  return ClusterBuilder{}
      .add_machine(GpuType::V100, 8, network_gbps, "p3-v100")
      .add_machine(GpuType::T4, 4, network_gbps, "g4dn-t4")
      .add_machine(GpuType::K80, 1, network_gbps, "p2-k80")
      .add_machine(GpuType::M60, 2, network_gbps, "g3-m60")
      .build();
}

namespace {

Cluster build_by_proportion(std::span<const std::pair<GpuType, double>> mix,
                            std::size_t total_gpus, double network_gbps,
                            std::size_t gpus_per_machine,
                            std::size_t machines_per_domain = 0) {
  HARE_CHECK_MSG(total_gpus > 0, "cluster needs at least one GPU");
  HARE_CHECK_MSG(gpus_per_machine > 0, "machines need at least one GPU");
  // Largest-remainder apportionment of GPU counts to types.
  std::vector<std::size_t> counts(mix.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  double weight_sum = 0.0;
  for (const auto& [type, w] : mix) weight_sum += w;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const double exact =
        static_cast<double>(total_gpus) * mix[i].second / weight_sum;
    counts[i] = static_cast<std::size_t>(exact);
    assigned += counts[i];
    remainders.emplace_back(exact - static_cast<double>(counts[i]), i);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t k = 0; assigned < total_gpus; ++k, ++assigned) {
    ++counts[remainders[k % remainders.size()].second];
  }

  ClusterBuilder builder;
  std::size_t machine_index = 0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    std::size_t remaining = counts[i];
    while (remaining > 0) {
      const std::size_t host = std::min(remaining, gpus_per_machine);
      const std::size_t domain =
          machines_per_domain > 0 ? machine_index / machines_per_domain : 0;
      builder.add_machine(mix[i].first, host, network_gbps, {}, domain);
      remaining -= host;
      ++machine_index;
    }
  }
  return builder.build();
}

}  // namespace

Cluster make_heterogeneity_cluster(HeterogeneityLevel level,
                                   std::size_t total_gpus, double network_gbps,
                                   std::size_t gpus_per_machine) {
  using P = std::pair<GpuType, double>;
  switch (level) {
    case HeterogeneityLevel::Low: {
      const std::array<P, 1> mix = {P{GpuType::V100, 1.0}};
      return build_by_proportion(mix, total_gpus, network_gbps,
                                 gpus_per_machine);
    }
    case HeterogeneityLevel::Mid: {
      const std::array<P, 2> mix = {P{GpuType::V100, 1.0},
                                    P{GpuType::K80, 1.0}};
      return build_by_proportion(mix, total_gpus, network_gbps,
                                 gpus_per_machine);
    }
    case HeterogeneityLevel::High: {
      const std::array<P, 4> mix = {P{GpuType::V100, 1.0}, P{GpuType::T4, 1.0},
                                    P{GpuType::K80, 1.0}, P{GpuType::M60, 1.0}};
      return build_by_proportion(mix, total_gpus, network_gbps,
                                 gpus_per_machine);
    }
  }
  HARE_CHECK_MSG(false, "unknown heterogeneity level");
  return {};
}

Cluster make_simulation_cluster(std::size_t total_gpus, double network_gbps,
                                std::size_t gpus_per_machine,
                                std::size_t machines_per_domain) {
  using P = std::pair<GpuType, double>;
  const std::array<P, 4> mix = {P{GpuType::V100, 8.0}, P{GpuType::T4, 4.0},
                                P{GpuType::K80, 1.0}, P{GpuType::M60, 2.0}};
  return build_by_proportion(mix, total_gpus, network_gbps, gpus_per_machine,
                             machines_per_domain);
}

std::string_view heterogeneity_level_name(HeterogeneityLevel level) {
  switch (level) {
    case HeterogeneityLevel::Low: return "low (V100)";
    case HeterogeneityLevel::Mid: return "mid (V100+K80)";
    case HeterogeneityLevel::High: return "high (V100+T4+K80+M60)";
  }
  return "?";
}

}  // namespace hare::cluster
