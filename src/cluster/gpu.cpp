#include "cluster/gpu.hpp"

#include "common/error.hpp"

namespace hare::cluster {

namespace {

constexpr std::array<GpuSpec, kGpuTypeCount> kCatalogue = {{
    {GpuType::K80, GpuArch::Kepler, "K80", 4.37, 240.0, 12ull * 1024 * 1024 * 1024,
     15.75, 3.1, 1.2},
    {GpuType::M60, GpuArch::Maxwell, "M60", 4.85, 160.0, 8ull * 1024 * 1024 * 1024,
     15.75, 2.6, 1.0},
    {GpuType::P100, GpuArch::Pascal, "P100", 9.30, 732.0, 16ull * 1024 * 1024 * 1024,
     15.75, 2.2, 0.9},
    {GpuType::V100, GpuArch::Volta, "V100", 15.70, 900.0, 16ull * 1024 * 1024 * 1024,
     15.75, 2.0, 0.8},
    {GpuType::T4, GpuArch::Turing, "T4", 8.14, 320.0, 16ull * 1024 * 1024 * 1024,
     15.75, 2.0, 0.8},
    {GpuType::A100, GpuArch::Ampere, "A100", 19.50, 1555.0, 40ull * 1024 * 1024 * 1024,
     15.75, 1.8, 0.7},
}};

constexpr std::array<GpuType, kGpuTypeCount> kAllTypes = {
    GpuType::K80, GpuType::M60, GpuType::P100,
    GpuType::V100, GpuType::T4, GpuType::A100};

}  // namespace

const GpuSpec& gpu_spec(GpuType type) {
  const auto index = static_cast<std::size_t>(type);
  HARE_CHECK_MSG(index < kCatalogue.size(), "unknown GPU type");
  return kCatalogue[index];
}

std::string_view gpu_type_name(GpuType type) { return gpu_spec(type).name; }

std::string_view gpu_arch_name(GpuArch arch) {
  switch (arch) {
    case GpuArch::Kepler: return "Kepler";
    case GpuArch::Maxwell: return "Maxwell";
    case GpuArch::Pascal: return "Pascal";
    case GpuArch::Volta: return "Volta";
    case GpuArch::Turing: return "Turing";
    case GpuArch::Ampere: return "Ampere";
  }
  return "?";
}

const std::array<GpuType, kGpuTypeCount>& all_gpu_types() { return kAllTypes; }

}  // namespace hare::cluster
