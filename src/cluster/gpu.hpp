// GPU hardware catalogue.
//
// The paper's testbed mixes four NVIDIA generations (8×V100, 4×T4, 1×K80,
// 2×M60 across 4 EC2 instances). Scheduling decisions depend on
// per-(model, GPU) batch times, GPU memory capacity, and interconnect
// bandwidth, so that is what the catalogue captures. Peak-FLOPS numbers are
// the published per-die figures; the per-model efficiency that turns peak
// into achieved throughput lives in workload/perf_model.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace hare::cluster {

/// Microarchitecture generation; the performance model keys efficiency
/// factors by generation.
enum class GpuArch : std::uint8_t {
  Kepler,   // K80
  Maxwell,  // M60
  Pascal,   // P100
  Volta,    // V100
  Turing,   // T4
  Ampere,   // A100 (extension beyond the paper's testbed)
};

enum class GpuType : std::uint8_t {
  K80,
  M60,
  P100,
  V100,
  T4,
  A100,
};

inline constexpr std::size_t kGpuTypeCount = 6;

struct GpuSpec {
  GpuType type{};
  GpuArch arch{};
  std::string_view name;
  double fp32_tflops = 0.0;      ///< peak single-precision, per die
  double mem_bandwidth_gbps = 0.0;  ///< GB/s device memory
  Bytes memory = 0;              ///< device memory capacity
  double pcie_gbps = 15.75;      ///< host<->device, PCIe 3.0 x16 per paper
  /// Baseline CUDA context creation / destruction cost when *not* using a
  /// pre-created context pool (seconds). Older parts are slower.
  Time context_create_s = 0.0;
  Time context_destroy_s = 0.0;
};

/// Static spec lookup. Values: NVIDIA datasheets (K80/M60 per-die);
/// context costs follow the magnitudes reported by PipeSwitch (OSDI'20).
[[nodiscard]] const GpuSpec& gpu_spec(GpuType type);

[[nodiscard]] std::string_view gpu_type_name(GpuType type);
[[nodiscard]] std::string_view gpu_arch_name(GpuArch arch);

/// All types in catalogue order (stable for iteration in tests/benches).
[[nodiscard]] const std::array<GpuType, kGpuTypeCount>& all_gpu_types();

}  // namespace hare::cluster
