// Cluster composition and network topology.
//
// A `Cluster` is a set of machines, each hosting one or more GPUs and an
// uplink of a given bandwidth (the paper's testbed: 4 EC2 instances on
// 25 Gbps Ethernet). Parameter-server synchronization traffic crosses the
// machine uplinks; intra-machine traffic uses PCIe. `ClusterBuilder`
// assembles arbitrary configurations, and presets reproduce the paper's
// testbed and the simulator's low / mid / high heterogeneity levels
// (Fig 16).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/gpu.hpp"
#include "common/types.hpp"

namespace hare::cluster {

struct Gpu {
  GpuId id;
  MachineId machine;
  GpuType type{};

  [[nodiscard]] const GpuSpec& spec() const { return gpu_spec(type); }
};

struct Machine {
  MachineId id;
  std::string name;
  /// Uplink/downlink bandwidth in Gbit/s (network, shared by the machine's
  /// GPUs for PS traffic).
  double network_gbps = 25.0;
  /// Network domain (rack / pod / spine block) the machine's uplink hangs
  /// off. PS traffic between a job's tasks stays cheap within a domain;
  /// the hierarchical planner shards the cluster along these boundaries.
  std::size_t domain = 0;
  std::vector<GpuId> gpus;
};

class Cluster {
 public:
  [[nodiscard]] std::size_t gpu_count() const { return gpus_.size(); }
  [[nodiscard]] std::size_t machine_count() const { return machines_.size(); }

  [[nodiscard]] const Gpu& gpu(GpuId id) const;
  [[nodiscard]] const Machine& machine(MachineId id) const;
  [[nodiscard]] const std::vector<Gpu>& gpus() const { return gpus_; }
  [[nodiscard]] const std::vector<Machine>& machines() const {
    return machines_;
  }

  /// Number of GPUs of each type present.
  [[nodiscard]] std::vector<std::pair<GpuType, std::size_t>> type_histogram()
      const;

  /// Ratio of the fastest to slowest peak FP32 throughput in the cluster;
  /// a crude heterogeneity indicator used in reports.
  [[nodiscard]] double peak_speed_ratio() const;

  /// True when every GPU is of the same type.
  [[nodiscard]] bool homogeneous() const;

  /// Number of distinct network domains (max machine domain + 1; 1 for a
  /// flat single-domain cluster, 0 when empty).
  [[nodiscard]] std::size_t domain_count() const;

  /// Scale every machine's uplink to `gbps` (Fig 18 bandwidth sweep).
  void set_network_gbps(double gbps);

 private:
  friend class ClusterBuilder;
  std::vector<Gpu> gpus_;
  std::vector<Machine> machines_;
};

class ClusterBuilder {
 public:
  /// Add a machine hosting `count` GPUs of `type` in network `domain`.
  /// Returns the machine id.
  ClusterBuilder& add_machine(GpuType type, std::size_t count,
                              double network_gbps = 25.0,
                              std::string name = {}, std::size_t domain = 0);

  [[nodiscard]] Cluster build() const { return cluster_; }

 private:
  Cluster cluster_;
};

/// The paper's 15-GPU testbed: 8 V100 + 4 T4 + 1 K80 + 2 M60 on four
/// machines connected by 25 Gbps Ethernet (§7.1).
[[nodiscard]] Cluster make_testbed_cluster(double network_gbps = 25.0);

/// Heterogeneity levels used in Fig 16 (160 GPUs by default):
///   low  = V100 only, mid = V100 × K80, high = V100 × T4 × K80 × M60.
enum class HeterogeneityLevel { Low, Mid, High };

[[nodiscard]] Cluster make_heterogeneity_cluster(HeterogeneityLevel level,
                                                 std::size_t total_gpus,
                                                 double network_gbps = 25.0,
                                                 std::size_t gpus_per_machine = 8);

/// Large-scale simulator cluster with the testbed's type proportions
/// (8:4:1:2 V100:T4:K80:M60), `gpus_per_machine` GPUs per machine.
/// `machines_per_domain > 0` groups consecutive machines into network
/// domains of that size (racks); 0 keeps the whole cluster in domain 0.
[[nodiscard]] Cluster make_simulation_cluster(
    std::size_t total_gpus, double network_gbps = 25.0,
    std::size_t gpus_per_machine = 8, std::size_t machines_per_domain = 0);

[[nodiscard]] std::string_view heterogeneity_level_name(HeterogeneityLevel level);

}  // namespace hare::cluster
