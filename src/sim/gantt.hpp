// ASCII Gantt rendering of a simulated schedule.
//
// One row per GPU, time on the x-axis scaled into `width` columns; each
// task cell shows its job's glyph (0-9, a-z, A-Z cycling), '.' for idle.
// Used by the CLI and examples to make schedules inspectable at a glance:
//
//   V100 #0 |000001111....2222|
//   K80  #2 |3333333333333....|
#pragma once

#include <string>

#include "cluster/cluster.hpp"
#include "sim/metrics.hpp"
#include "sim/schedule.hpp"
#include "workload/job.hpp"

namespace hare::sim {

struct GanttOptions {
  std::size_t width = 80;   ///< columns for the time axis
  bool show_legend = true;  ///< append a job glyph -> name legend
};

/// Render the executed schedule (task records from `result`).
[[nodiscard]] std::string render_gantt(const cluster::Cluster& cluster,
                                       const workload::JobSet& jobs,
                                       const SimResult& result,
                                       const GanttOptions& options = {});

}  // namespace hare::sim
