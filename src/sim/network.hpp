// Shared-uplink network model (optional contention mode).
//
// Each machine's uplink is a processor-sharing server: concurrent gradient
// push/pull transfers split the link rate equally. The default simulator
// mode charges the profiled T^s directly (the paper treats sync time as a
// per-(task, GPU) constant); enabling contention makes simultaneous syncs
// on one machine stretch each other, which the bandwidth-sweep ablation
// exercises.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"

namespace hare::sim {

class NetworkModel {
 public:
  explicit NetworkModel(const cluster::Cluster& cluster);

  using TransferId = std::uint64_t;

  /// Begin transferring `bytes` over `machine`'s uplink at `now`.
  TransferId start_transfer(MachineId machine, double bytes, Time now);

  /// Earliest completion across all machines (kTimeInfinity when idle).
  [[nodiscard]] Time next_completion() const;

  /// Pop every transfer completing exactly at `t` (== next_completion()).
  std::vector<TransferId> complete_at(Time t);

  [[nodiscard]] std::size_t active_count() const;

 private:
  struct Transfer {
    TransferId id = 0;
    double remaining_bytes = 0.0;
  };
  struct Uplink {
    double bytes_per_second = 0.0;
    Time last_update = 0.0;
    std::vector<Transfer> active;
  };

  /// Drain progress on a machine's active transfers up to `now`.
  void advance(Uplink& link, Time now);
  [[nodiscard]] Time link_next_completion(const Uplink& link) const;

  std::vector<Uplink> uplinks_;
  TransferId next_id_ = 1;
};

}  // namespace hare::sim
