// Trace-driven discrete-event simulator (§7.1's simulator, in C++).
//
// Executes a `Schedule` (ordered task sequence per GPU) under the real
// constraints of §5.1:
//   * tasks cannot start before their job arrives (4);
//   * round r+1 waits for every round-r task's compute AND sync (7);
//   * one task per GPU, non-preemptible (8);
//   * a task's sync overlaps the next task on its GPU (Algorithm 1 l.16) —
//     the GPU frees at compute end, the round barrier waits for sync end.
//
// Switching cost is charged per the configured SwitchCostModel; under the
// Hare policy each GPU carries a SpeculativeMemoryManager so same-job
// revisits skip the model transfer. Actual task times come from the
// supplied (noise-free) time table, optionally jittered per-task with a
// log-normal factor to emulate the testbed ("testbed mode"); the paper's
// <5% testbed-vs-simulator gap experiment compares the two modes.
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/cluster.hpp"
#include "fault/fault_plan.hpp"
#include "profiler/time_table.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/schedule.hpp"
#include "switching/switch_model.hpp"
#include "workload/job.hpp"

namespace hare::sim {

struct SimConfig {
  switching::SwitchModelConfig switching{};
  /// Event-queue backend. Calendar is the optimized bucketed ladder; Heap
  /// is the reference binary heap. Both pop in identical (time, sequence)
  /// order, so the choice never changes a result — only wall-clock.
  QueueBackend event_queue = QueueBackend::Calendar;
  /// Give each GPU a speculative memory manager (only meaningful under the
  /// Hare switch policy; the ablation bench turns it off).
  bool use_memory_manager = true;
  /// Log-normal jitter CV on actual per-task compute times; 0 = exact
  /// simulator mode, >0 = testbed mode.
  double runtime_noise_cv = 0.0;
  std::uint64_t noise_seed = 42;
  /// Model uplink contention with processor sharing instead of charging
  /// the profiled T^s as a constant.
  bool model_network_contention = false;
  /// Contention mode only: RPC/aggregation latency appended to a transfer,
  /// and payload scale on the 2×parameter-bytes push+pull volume. Must
  /// match the PerfModelConfig used for profiling for apples-to-apples.
  Time sync_latency_s = 0.010;
  double sync_volume_factor = 1.0;
  /// Record per-GPU busy intervals (utilization timelines).
  bool record_timeline = false;

  /// Fault injection: replay this plan's events inside the run (nullptr =
  /// fault-free; every field below is inert without it). The plan's events
  /// enter the event queue at init, so fault runs keep the strict
  /// (time, sequence) order that makes serial/pooled sweeps bit-identical.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Checkpoint-restart policy for jobs displaced by failures.
  fault::RetryPolicy retry{};
  /// Called on failure/recovery to plan displaced jobs onto the surviving
  /// cluster (fault::FaultRunner wires the real planner in). Jobs that
  /// cannot be replanned — no hook, or the hook returns no placement for
  /// their remaining rounds — are dead-lettered.
  const fault::ReplanFn* replan = nullptr;
};

namespace detail {
struct SimScratchImpl;
}

/// Reusable per-run working state: event queue storage, per-GPU and
/// per-job state vectors, noise draws, and the memoized per-job /
/// per-(model, GPU-type) lookup tables. A run fully re-initializes every
/// field, so reusing one scratch across runs (the sweep engine keeps one
/// per worker thread) changes nothing but the allocation count. Not
/// thread-safe: one scratch per concurrent run.
class SimScratch {
 public:
  SimScratch();
  ~SimScratch();
  SimScratch(SimScratch&&) noexcept;
  SimScratch& operator=(SimScratch&&) noexcept;
  SimScratch(const SimScratch&) = delete;
  SimScratch& operator=(const SimScratch&) = delete;

 private:
  friend class Simulator;
  std::unique_ptr<detail::SimScratchImpl> impl_;
};

class Simulator {
 public:
  /// `actual` holds the ground-truth task times (profiler::Profiler::exact);
  /// schedulers may have planned with a noisier profiled table.
  Simulator(const cluster::Cluster& cluster, const workload::JobSet& jobs,
            const profiler::TimeTable& actual, SimConfig config = {});

  /// Execute the plan; validates it structurally first.
  [[nodiscard]] SimResult run(const Schedule& schedule) const;

  /// Same, reusing `scratch`'s buffers instead of allocating fresh ones.
  [[nodiscard]] SimResult run(const Schedule& schedule,
                              SimScratch& scratch) const;

 private:
  const cluster::Cluster& cluster_;
  const workload::JobSet& jobs_;
  const profiler::TimeTable& actual_;
  SimConfig config_;
};

}  // namespace hare::sim
