#include "sim/export.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace hare::sim {

void export_task_csv(const cluster::Cluster& cluster,
                     const workload::JobSet& jobs, const SimResult& result,
                     std::ostream& os) {
  os << "task,job,job_name,model,round,slot,gpu,gpu_type,ready,start,"
        "switch_s,compute_start,compute_end,sync_end,model_resident\n";
  os.precision(9);
  for (const auto& task : jobs.tasks()) {
    const auto& record =
        result.tasks[static_cast<std::size_t>(task.id.value())];
    const auto& job = jobs.job(task.job);
    os << task.id << ',' << task.job << ',' << job.spec.name << ','
       << workload::model_name(job.spec.model) << ',' << task.round << ','
       << task.slot << ',' << record.gpu << ','
       << cluster.gpu(record.gpu).spec().name << ',' << record.ready << ','
       << record.start << ',' << record.switch_time << ','
       << record.compute_start << ',' << record.compute_end << ','
       << record.sync_end << ',' << (record.model_resident ? 1 : 0) << '\n';
  }
}

void export_job_csv(const workload::JobSet& jobs, const SimResult& result,
                    std::ostream& os) {
  os << "job,name,model,weight,arrival,completion,jct,rounds,"
        "tasks_per_round\n";
  os.precision(9);
  for (const auto& job : jobs.jobs()) {
    const auto& record =
        result.jobs[static_cast<std::size_t>(job.id.value())];
    os << job.id << ',' << job.spec.name << ','
       << workload::model_name(job.spec.model) << ',' << job.spec.weight
       << ',' << record.arrival << ',' << record.completion << ','
       << record.jct() << ',' << job.rounds() << ','
       << job.tasks_per_round() << '\n';
  }
}

void export_result_files(const cluster::Cluster& cluster,
                         const workload::JobSet& jobs,
                         const SimResult& result, const std::string& prefix) {
  {
    std::ofstream os(prefix + "_tasks.csv");
    HARE_CHECK_MSG(os.good(), "cannot write " << prefix << "_tasks.csv");
    export_task_csv(cluster, jobs, result, os);
  }
  {
    std::ofstream os(prefix + "_jobs.csv");
    HARE_CHECK_MSG(os.good(), "cannot write " << prefix << "_jobs.csv");
    export_job_csv(jobs, result, os);
  }
}

}  // namespace hare::sim
