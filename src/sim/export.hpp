// CSV export of simulation results for external analysis/plotting.
//
// Two flat files: one row per task (placement and full timing breakdown)
// and one row per job (completion, JCT, weight). Columns are stable and
// documented here so downstream notebooks can rely on them.
#pragma once

#include <iosfwd>
#include <string>

#include "cluster/cluster.hpp"
#include "sim/metrics.hpp"
#include "workload/job.hpp"

namespace hare::sim {

/// Columns: task,job,job_name,model,round,slot,gpu,gpu_type,ready,start,
/// switch_s,compute_start,compute_end,sync_end,model_resident
void export_task_csv(const cluster::Cluster& cluster,
                     const workload::JobSet& jobs, const SimResult& result,
                     std::ostream& os);

/// Columns: job,name,model,weight,arrival,completion,jct,rounds,
/// tasks_per_round
void export_job_csv(const workload::JobSet& jobs, const SimResult& result,
                    std::ostream& os);

/// Write `<prefix>_tasks.csv` and `<prefix>_jobs.csv`.
void export_result_files(const cluster::Cluster& cluster,
                         const workload::JobSet& jobs,
                         const SimResult& result, const std::string& prefix);

}  // namespace hare::sim
