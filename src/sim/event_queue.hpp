// Deterministic discrete-event queue.
//
// Events at equal timestamps pop in insertion order (monotonic sequence
// numbers), so floating-point time never causes nondeterministic ordering
// and identical seeds replay identical simulations.
//
// Two backends share the API and the exact pop order (total order by
// (time, sequence)):
//
//  * Heap — binary heap over a flat vector. The reference structure:
//    O(log n) push/pop, pop() moves the event out instead of copying
//    payloads through top(), and reserve() pre-sizes the vector for runs
//    with known event counts.
//  * Calendar (default) — a bucketed calendar/ladder queue tuned for the
//    simulator's access pattern (time advances monotonically; every pop
//    schedules a handful of near-future events). Events land in
//    fixed-width buckets; only the *current* bucket is kept sorted (it
//    doubles as a pop stack), so most pushes are an O(1) bucket append
//    and pops are O(1) amortized. When the bucket window drains, the
//    remaining events are redistributed over a fresh window sized from
//    their actual span — the classic calendar-queue resize, amortized
//    over the events it places.
//
// Both backends are agnostic to push order and tolerate pushes earlier
// than the last popped time (they sort into the current bucket), although
// the simulator never produces them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace hare::sim {

enum class QueueBackend : std::uint8_t { Calendar, Heap };

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Time time = 0.0;
    std::uint64_t sequence = 0;
    Payload payload{};
  };

  explicit EventQueue(QueueBackend backend = QueueBackend::Calendar)
      : backend_(backend) {}

  [[nodiscard]] QueueBackend backend() const { return backend_; }

  /// Pre-size internal storage for a run with ~n simultaneously pending
  /// events (no rehash/regrow while the run is hot).
  void reserve(std::size_t n) {
    if (backend_ == QueueBackend::Heap) {
      heap_.reserve(n);
    } else {
      near_.reserve(std::min<std::size_t>(n, 256));
      overflow_.reserve(n);
    }
  }

  /// Drop all events and reset sequence numbering; storage is retained so
  /// a reused queue (SimScratch) allocates nothing on the next run.
  void clear() {
    heap_.clear();
    near_.clear();
    for (auto& bucket : buckets_) bucket.clear();
    overflow_.clear();
    size_ = 0;
    next_sequence_ = 0;
    window_valid_ = false;
    near_limit_ = -kTimeInfinity;
  }

  void push(Time time, Payload payload) {
    Event event{time, next_sequence_++, std::move(payload)};
    ++size_;
    if (backend_ == QueueBackend::Heap) {
      heap_.push_back(std::move(event));
      std::push_heap(heap_.begin(), heap_.end(), Later{});
      return;
    }
    if (time < near_limit_) {
      // Belongs to the bucket currently being drained (or earlier):
      // sorted-insert so the pop stack stays ordered. The comparator is a
      // strict total order, so ties on time resolve by sequence.
      const auto it =
          std::upper_bound(near_.begin(), near_.end(), event, Later{});
      near_.insert(it, std::move(event));
      return;
    }
    if (window_valid_) {
      const std::size_t index = bucket_index(time);
      if (index < buckets_.size()) {
        buckets_[index].push_back(std::move(event));
        return;
      }
    }
    overflow_.push_back(std::move(event));
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] const Event& top() {
    if (backend_ == QueueBackend::Heap) return heap_.front();
    settle();
    return near_.back();
  }

  Event pop() {
    --size_;
    if (backend_ == QueueBackend::Heap) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Event event = std::move(heap_.back());
      heap_.pop_back();
      return event;
    }
    settle();
    Event event = std::move(near_.back());
    near_.pop_back();
    return event;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  static constexpr std::size_t kBucketCount = 128;

  [[nodiscard]] std::size_t bucket_index(Time time) const {
    if (time < window_base_) return next_bucket_;  // late push, current bucket
    const double offset = (time - window_base_) / bucket_width_;
    if (offset >= static_cast<double>(buckets_.size())) return buckets_.size();
    const auto index = static_cast<std::size_t>(offset);
    // A push into an already-drained bucket (can only happen within
    // floating-point slop of the current bucket boundary) goes to the
    // current one; near_limit_ routing makes this unreachable in practice.
    return std::max(index, next_bucket_);
  }

  /// Ensure near_ is non-empty (callers guarantee size_ > 0): promote the
  /// next non-empty bucket into the sorted pop stack, rebuilding the
  /// bucket window from the overflow when the current window is spent.
  void settle() {
    while (near_.empty()) {
      if (window_valid_) {
        while (next_bucket_ < buckets_.size()) {
          auto& bucket = buckets_[next_bucket_];
          ++next_bucket_;
          near_limit_ =
              window_base_ +
              static_cast<double>(next_bucket_) * bucket_width_;
          if (bucket.empty()) continue;
          std::sort(bucket.begin(), bucket.end(), Later{});
          near_.swap(bucket);
          bucket.clear();
          break;
        }
        if (!near_.empty()) return;
        window_valid_ = false;
      }
      rebuild_window();
    }
  }

  /// Start a fresh bucket window spanning the pending overflow events.
  void rebuild_window() {
    Time lo = kTimeInfinity;
    Time hi = -kTimeInfinity;
    for (const Event& event : overflow_) {
      lo = std::min(lo, event.time);
      hi = std::max(hi, event.time);
    }
    if (buckets_.empty()) buckets_.resize(kBucketCount);
    window_base_ = lo;
    bucket_width_ =
        std::max((hi - lo) / static_cast<double>(kBucketCount - 1),
                 std::numeric_limits<double>::min());
    next_bucket_ = 0;
    near_limit_ = window_base_;
    std::vector<Event> pending;
    pending.swap(overflow_);
    for (Event& event : pending) {
      const std::size_t index = bucket_index(event.time);
      if (index < buckets_.size()) {
        buckets_[index].push_back(std::move(event));
      } else {
        overflow_.push_back(std::move(event));  // beyond this window
      }
    }
    window_valid_ = true;
  }

  QueueBackend backend_;
  std::uint64_t next_sequence_ = 0;
  std::size_t size_ = 0;

  // Heap backend.
  std::vector<Event> heap_;

  // Calendar backend. near_ is sorted descending by (time, sequence) so
  // the soonest event sits at the back (O(1) pop); it holds every pending
  // event with time < near_limit_.
  std::vector<Event> near_;
  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> overflow_;
  Time near_limit_ = -kTimeInfinity;
  Time window_base_ = 0.0;
  double bucket_width_ = 1.0;
  std::size_t next_bucket_ = 0;
  bool window_valid_ = false;
};

}  // namespace hare::sim
