// Deterministic discrete-event queue.
//
// Events at equal timestamps pop in insertion order (monotonic sequence
// numbers), so floating-point time never causes nondeterministic ordering
// and identical seeds replay identical simulations.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace hare::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Time time = 0.0;
    std::uint64_t sequence = 0;
    Payload payload{};
  };

  void push(Time time, Payload payload) {
    heap_.push(Event{time, next_sequence_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.top(); }

  Event pop() {
    Event event = heap_.top();
    heap_.pop();
    return event;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace hare::sim
