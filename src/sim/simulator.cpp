#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"

namespace hare::sim {

namespace detail {

constexpr double kTimeEps = 1e-9;

enum class EventKind : std::uint8_t { TryStart, ComputeDone, SyncDone };

struct EventPayload {
  EventKind kind = EventKind::TryStart;
  GpuId gpu;
  TaskId task;
};

struct GpuState {
  std::size_t next_index = 0;  ///< cursor into the GPU's sequence
  bool busy = false;
  bool waiting = false;  ///< registered on a round barrier
  std::optional<JobId> previous_job;
  std::optional<switching::SpeculativeMemoryManager> memory;
};

struct RoundState {
  int remaining = 0;
  Time barrier = 0.0;
  bool done = false;
  std::vector<GpuId> waiters;
};

struct JobState {
  std::vector<RoundState> rounds;
  bool finished = false;
};

/// Everything a run touches per event, owned by SimScratch so repeated
/// runs reuse the buffers. The per-job info and the switch-cost table are
/// the memoized lookups: built in one pass at run start, read per event.
struct SimScratchImpl {
  struct JobInfo {
    workload::ModelType model{};
    Bytes footprint = 0;    ///< task_memory_footprint at the job's batch
    Bytes state_bytes = 0;  ///< model_state_bytes
  };

  std::vector<double> tc_noise;
  std::vector<double> ts_noise;
  std::vector<GpuState> gpus;
  std::vector<JobState> job_states;
  std::vector<JobInfo> job_info;
  EventQueue<EventPayload> events;
  std::unordered_map<NetworkModel::TransferId, TaskId> inflight_syncs;
  switching::SwitchCostTable switch_table;
};

}  // namespace detail

SimScratch::SimScratch() : impl_(std::make_unique<detail::SimScratchImpl>()) {}
SimScratch::~SimScratch() = default;
SimScratch::SimScratch(SimScratch&&) noexcept = default;
SimScratch& SimScratch::operator=(SimScratch&&) noexcept = default;

double SimResult::busy_fraction(GpuId gpu, Time lo, Time hi) const {
  HARE_CHECK_MSG(!busy_intervals.empty(),
                 "busy_fraction requires record_timeline");
  HARE_CHECK_MSG(hi > lo, "empty window");
  const auto& intervals =
      busy_intervals[static_cast<std::size_t>(gpu.value())];
  Time busy = 0.0;
  for (const auto& [start, end] : intervals) {
    busy += std::max(0.0, std::min(end, hi) - std::max(start, lo));
  }
  return busy / (hi - lo);
}

Simulator::Simulator(const cluster::Cluster& cluster,
                     const workload::JobSet& jobs,
                     const profiler::TimeTable& actual, SimConfig config)
    : cluster_(cluster), jobs_(jobs), actual_(actual), config_(config) {
  HARE_CHECK_MSG(actual.job_count() == jobs.job_count(),
                 "time table covers " << actual.job_count() << " jobs, set has "
                                      << jobs.job_count());
  HARE_CHECK_MSG(actual.gpu_count() == cluster.gpu_count(),
                 "time table covers " << actual.gpu_count()
                                      << " GPUs, cluster has "
                                      << cluster.gpu_count());
}

SimResult Simulator::run(const Schedule& schedule) const {
  SimScratch scratch;
  return run(schedule, scratch);
}

SimResult Simulator::run(const Schedule& schedule, SimScratch& state) const {
  using detail::EventKind;
  using detail::EventPayload;
  using detail::GpuState;
  using detail::JobState;
  using detail::RoundState;
  using detail::kTimeEps;

  HARE_SPAN("sim", "sim.run");
  HARE_CHECK_MSG(schedule.gpu_count() == cluster_.gpu_count(),
                 "schedule covers " << schedule.gpu_count()
                                    << " GPUs, cluster has "
                                    << cluster_.gpu_count());
  validate_schedule(schedule, jobs_);

  const std::size_t task_count = jobs_.task_count();
  const std::size_t gpu_count = cluster_.gpu_count();
  detail::SimScratchImpl& scratch = *state.impl_;

  // Pre-drawn per-task noise keeps actual durations independent of event
  // order (deterministic replay regardless of schedule shape). With noise
  // off (exact simulator mode) the vectors are skipped entirely.
  const bool with_noise = config_.runtime_noise_cv > 0.0;
  std::vector<double>& tc_noise = scratch.tc_noise;
  std::vector<double>& ts_noise = scratch.ts_noise;
  if (with_noise) {
    tc_noise.assign(task_count, 1.0);
    ts_noise.assign(task_count, 1.0);
    common::Rng rng(config_.noise_seed);
    const double cv = config_.runtime_noise_cv;
    const double sigma = std::sqrt(std::log(1.0 + cv * cv));
    for (std::size_t i = 0; i < task_count; ++i) {
      tc_noise[i] = rng.log_normal(-sigma * sigma / 2.0, sigma);
      ts_noise[i] = rng.log_normal(-sigma * sigma / 2.0, sigma);
    }
  }

  // Memoized lookups: per-(model, GPU-type) switch costs and per-job model
  // info, built once instead of re-derived at every task start.
  const switching::SwitchCostModel switch_model(config_.switching);
  scratch.switch_table.build(switch_model);
  scratch.job_info.assign(jobs_.job_count(), {});
  for (const auto& job : jobs_.jobs()) {
    const workload::ModelSpec& model = workload::model_spec(job.spec.model);
    auto& info = scratch.job_info[static_cast<std::size_t>(job.id.value())];
    info.model = job.spec.model;
    info.footprint =
        workload::task_memory_footprint(model, job.effective_batch_size());
    info.state_bytes = workload::model_state_bytes(model);
  }

  const bool with_memory =
      config_.use_memory_manager &&
      config_.switching.policy == switching::SwitchPolicy::Hare;

  std::vector<GpuState>& gpus = scratch.gpus;
  gpus.assign(gpu_count, {});
  for (std::size_t g = 0; g < gpu_count; ++g) {
    if (with_memory) {
      gpus[g].memory.emplace(
          cluster_.gpu(GpuId(static_cast<int>(g))).spec().memory);
    }
  }

  std::vector<JobState>& job_states = scratch.job_states;
  job_states.resize(jobs_.job_count());
  for (const auto& job : jobs_.jobs()) {
    auto& js = job_states[static_cast<std::size_t>(job.id.value())];
    js.finished = false;
    js.rounds.resize(job.rounds());
    for (auto& round : js.rounds) {
      round.remaining = static_cast<int>(job.tasks_per_round());
      round.barrier = 0.0;
      round.done = false;
      round.waiters.clear();
    }
  }

  SimResult result;
  result.tasks.assign(task_count, {});
  result.jobs.resize(jobs_.job_count());
  for (const auto& job : jobs_.jobs()) {
    auto& record = result.jobs[static_cast<std::size_t>(job.id.value())];
    record.arrival = job.spec.arrival;
    record.weight = job.spec.weight;
  }
  result.gpus.assign(gpu_count, {});
  if (config_.record_timeline) result.busy_intervals.resize(gpu_count);

  if (scratch.events.backend() != config_.event_queue) {
    scratch.events = EventQueue<EventPayload>(config_.event_queue);
  } else {
    scratch.events.clear();
  }
  EventQueue<EventPayload>& events = scratch.events;
  events.reserve(gpu_count * 2 + 16);
  NetworkModel network(cluster_);
  auto& inflight_syncs = scratch.inflight_syncs;
  inflight_syncs.clear();

  // --- helpers -----------------------------------------------------------

  auto start_task = [&](GpuId gpu_id, TaskId task_id, Time now, Time ready) {
    GpuState& gpu = gpus[static_cast<std::size_t>(gpu_id.value())];
    const workload::Task& task = jobs_.task(task_id);
    const auto& info =
        scratch.job_info[static_cast<std::size_t>(task.job.value())];
    const cluster::Gpu& hw = cluster_.gpu(gpu_id);

    const switching::SpeculativeMemoryManager* memory_view =
        gpu.memory ? &*gpu.memory : nullptr;
    const switching::SwitchBreakdown& breakdown = scratch.switch_table.lookup(
        task.job, info.model, hw.type, gpu.previous_job, memory_view);
    if (gpu.memory) {
      gpu.memory->on_task_start(task.job, info.footprint, info.state_bytes);
    }

    const double tc =
        with_noise
            ? actual_.tc(task.job, gpu_id) *
                  tc_noise[static_cast<std::size_t>(task_id.value())]
            : actual_.tc(task.job, gpu_id);
    const Time switch_time = breakdown.total();

    TaskRecord& record =
        result.tasks[static_cast<std::size_t>(task_id.value())];
    record.gpu = gpu_id;
    record.ready = ready;
    record.start = now;
    record.switch_time = switch_time;
    record.compute_start = now + switch_time;
    record.compute_end = record.compute_start + tc;
    record.model_resident = breakdown.model_resident;

    GpuRecord& gpu_record =
        result.gpus[static_cast<std::size_t>(gpu_id.value())];
    gpu_record.busy_switch += switch_time;
    gpu_record.busy_compute += tc;
    gpu_record.last_busy_end = record.compute_end;
    ++gpu_record.task_count;
    if (config_.record_timeline) {
      result.busy_intervals[static_cast<std::size_t>(gpu_id.value())]
          .emplace_back(now, record.compute_end);
    }

    auto& stat = result.switch_stats[static_cast<std::size_t>(info.model)];
    stat.total_compute_time += tc;
    if (gpu.previous_job && *gpu.previous_job != task.job) {
      ++stat.switch_count;
      stat.total_switch_time += switch_time;
      if (breakdown.model_resident) ++stat.resident_hits;
      static obs::Histogram& preempt_latency = obs::histogram(
          "switch.preempt_latency_us", obs::latency_bounds_us());
      preempt_latency.record(switch_time * 1e6);  // virtual seconds -> µs
    }

    gpu.busy = true;
    gpu.previous_job = task.job;
    ++gpu.next_index;
    events.push(record.compute_end,
                EventPayload{EventKind::ComputeDone, gpu_id, task_id});
  };

  auto try_start = [&](GpuId gpu_id, Time now) {
    GpuState& gpu = gpus[static_cast<std::size_t>(gpu_id.value())];
    if (gpu.busy || gpu.waiting) return;
    const auto& sequence =
        schedule.sequences[static_cast<std::size_t>(gpu_id.value())];
    if (gpu.next_index >= sequence.size()) return;

    const TaskId task_id = sequence[gpu.next_index];
    const workload::Task& task = jobs_.task(task_id);
    const workload::Job& job = jobs_.job(task.job);

    Time ready = job.spec.arrival;
    if (task.round > 0) {
      RoundState& prev = job_states[static_cast<std::size_t>(
          task.job.value())].rounds[static_cast<std::size_t>(task.round - 1)];
      if (!prev.done) {
        prev.waiters.push_back(gpu_id);
        gpu.waiting = true;
        return;
      }
      ready = std::max(ready, prev.barrier);
    }

    if (ready > now + kTimeEps) {
      events.push(ready, EventPayload{EventKind::TryStart, gpu_id, TaskId{}});
      return;
    }
    start_task(gpu_id, task_id, now, ready);
  };

  auto handle_sync_done = [&](TaskId task_id, Time now) {
    const workload::Task& task = jobs_.task(task_id);
    result.tasks[static_cast<std::size_t>(task_id.value())].sync_end = now;

    JobState& job_state =
        job_states[static_cast<std::size_t>(task.job.value())];
    RoundState& round =
        job_state.rounds[static_cast<std::size_t>(task.round)];
    round.barrier = std::max(round.barrier, now);
    HARE_CHECK_MSG(round.remaining > 0, "round over-completed");
    if (--round.remaining > 0) return;

    round.done = true;
    const workload::Job& job = jobs_.job(task.job);
    if (static_cast<std::uint32_t>(task.round) + 1 == job.rounds()) {
      job_state.finished = true;
      auto& record = result.jobs[static_cast<std::size_t>(task.job.value())];
      record.completion = round.barrier;
      for (auto& gpu : gpus) {
        if (gpu.memory) gpu.memory->on_job_finished(task.job);
      }
    }
    // Wake GPUs whose heads were blocked on this barrier. Their start time
    // is the barrier, which may be earlier than `now` only by sync-ordering
    // slack; use the barrier as the ready stamp.
    std::vector<GpuId> waiters = std::move(round.waiters);
    round.waiters.clear();
    for (GpuId waiter : waiters) {
      gpus[static_cast<std::size_t>(waiter.value())].waiting = false;
      try_start(waiter, now);
    }
  };

  auto handle_compute_done = [&](GpuId gpu_id, TaskId task_id, Time now) {
    GpuState& gpu = gpus[static_cast<std::size_t>(gpu_id.value())];
    gpu.busy = false;
    if (gpu.memory) gpu.memory->on_task_complete(now);

    const workload::Task& task = jobs_.task(task_id);
    if (config_.model_network_contention) {
      const workload::ModelSpec& model = workload::model_spec(
          scratch.job_info[static_cast<std::size_t>(task.job.value())].model);
      const double bytes =
          2.0 * static_cast<double>(model.parameter_bytes) *
          config_.sync_volume_factor;
      const auto id = network.start_transfer(
          cluster_.gpu(gpu_id).machine, bytes, now);
      inflight_syncs.emplace(id, task_id);
    } else {
      const double ts =
          with_noise
              ? actual_.ts(task.job, gpu_id) *
                    ts_noise[static_cast<std::size_t>(task_id.value())]
              : actual_.ts(task.job, gpu_id);
      events.push(now + ts,
                  EventPayload{EventKind::SyncDone, gpu_id, task_id});
    }
    try_start(gpu_id, now);
  };

  // --- main loop ---------------------------------------------------------

  for (std::size_t g = 0; g < gpu_count; ++g) {
    events.push(0.0, EventPayload{EventKind::TryStart,
                                  GpuId(static_cast<int>(g)), TaskId{}});
  }

  static obs::Counter& events_processed =
      obs::counter("sim.events_processed");
  while (!events.empty() || network.active_count() > 0) {
    const Time network_time = network.next_completion();
    const Time event_time =
        events.empty() ? kTimeInfinity : events.top().time;

    if (network_time <= event_time) {
      HARE_SPAN_ARG("sim", "sim.event.network_sync", "vt", network_time);
      for (const auto transfer : network.complete_at(network_time)) {
        const auto it = inflight_syncs.find(transfer);
        HARE_CHECK_MSG(it != inflight_syncs.end(), "unknown transfer");
        // RPC/aggregation latency lands after the transfer completes.
        events.push(network_time + config_.sync_latency_s,
                    EventPayload{EventKind::SyncDone, GpuId{}, it->second});
        inflight_syncs.erase(it);
        events_processed.add();
      }
      continue;
    }

    const auto event = events.pop();
    events_processed.add();
    switch (event.payload.kind) {
      case EventKind::TryStart: {
        HARE_SPAN_ARG("sim", "sim.event.try_start", "vt", event.time);
        try_start(event.payload.gpu, event.time);
        break;
      }
      case EventKind::ComputeDone: {
        HARE_SPAN_ARG("sim", "sim.event.compute_done", "vt", event.time);
        handle_compute_done(event.payload.gpu, event.payload.task, event.time);
        break;
      }
      case EventKind::SyncDone: {
        HARE_SPAN_ARG("sim", "sim.event.sync_done", "vt", event.time);
        handle_sync_done(event.payload.task, event.time);
        break;
      }
    }
  }

  // --- aggregates --------------------------------------------------------

  for (const auto& job : jobs_.jobs()) {
    const auto& js = job_states[static_cast<std::size_t>(job.id.value())];
    HARE_CHECK_MSG(js.finished,
                   "job " << job.id << " did not finish (scheduler bug)");
  }
  for (const auto& record : result.jobs) {
    result.makespan = std::max(result.makespan, record.completion);
    result.weighted_completion += record.weight * record.completion;
    result.weighted_jct += record.weight * record.jct();
  }
  common::log_debug("sim: run finished, makespan ", result.makespan,
                    " s, weighted JCT ", result.weighted_jct, " s");
  return result;
}

}  // namespace hare::sim
