#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "fault/fault_spec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"

namespace hare::sim {

namespace detail {

constexpr double kTimeEps = 1e-9;

enum class EventKind : std::uint8_t { TryStart, ComputeDone, SyncDone, Fault };

struct EventPayload {
  EventKind kind = EventKind::TryStart;
  GpuId gpu;
  TaskId task;
  /// Staleness guard / dispatch tag: ComputeDone carries the GPU's kill
  /// epoch at push, SyncDone the job's plan epoch at push (mismatched
  /// events are dropped — the hardware died or the job was replanned
  /// while they were in flight); Fault carries the plan event index.
  std::uint32_t epoch = 0;
};

struct GpuState {
  std::size_t next_index = 0;  ///< cursor into the GPU's sequence
  bool busy = false;
  bool waiting = false;  ///< registered on a round barrier
  bool alive = true;
  /// Bumped whenever the running attempt is killed (GPU death or job
  /// displacement); in-flight ComputeDones from before the bump no-op.
  std::uint32_t kill_epoch = 0;
  double slow_factor = 1.0;  ///< > 1 inside a straggler window
  TaskId current_task;
  std::optional<JobId> previous_job;
  std::optional<switching::SpeculativeMemoryManager> memory;
};

struct RoundState {
  int remaining = 0;
  Time barrier = 0.0;
  bool done = false;
  std::vector<GpuId> waiters;
};

struct JobState {
  enum class Phase : std::uint8_t { Active, Finished, Cancelled, Dead };

  std::vector<RoundState> rounds;
  Phase phase = Phase::Active;
  /// Bumped whenever the job's placements are invalidated; queued sequence
  /// entries and in-flight SyncDones from older epochs are skipped.
  std::uint32_t plan_epoch = 0;
  RoundIndex checkpoint = 0;  ///< first incomplete round (restart point)
  Time release = 0.0;         ///< backoff gate after a restart
  Time failed_at = -1.0;      ///< last displacement time; -1 = none pending
  bool restart_started = false;  ///< a post-restart attempt began executing
};

/// One slot of a GPU's (mutable) task queue: the scheduled task plus the
/// owning job's plan epoch at append time. Entries whose epoch no longer
/// matches are dead — skipped by the cursor, never executed.
struct SeqEntry {
  TaskId task;
  std::uint32_t epoch = 0;
};

/// Everything a run touches per event, owned by SimScratch so repeated
/// runs reuse the buffers. The per-job info and the switch-cost table are
/// the memoized lookups: built in one pass at run start, read per event.
struct SimScratchImpl {
  struct JobInfo {
    workload::ModelType model{};
    Bytes footprint = 0;    ///< task_memory_footprint at the job's batch
    Bytes state_bytes = 0;  ///< model_state_bytes
  };
  struct SyncRef {
    TaskId task;
    std::uint32_t epoch = 0;
  };

  std::vector<double> tc_noise;
  std::vector<double> ts_noise;
  std::vector<GpuState> gpus;
  std::vector<JobState> job_states;
  std::vector<JobInfo> job_info;
  std::vector<std::vector<SeqEntry>> seq;
  EventQueue<EventPayload> events;
  std::unordered_map<NetworkModel::TransferId, SyncRef> inflight_syncs;
  switching::SwitchCostTable switch_table;
};

}  // namespace detail

SimScratch::SimScratch() : impl_(std::make_unique<detail::SimScratchImpl>()) {}
SimScratch::~SimScratch() = default;
SimScratch::SimScratch(SimScratch&&) noexcept = default;
SimScratch& SimScratch::operator=(SimScratch&&) noexcept = default;

double SimResult::busy_fraction(GpuId gpu, Time lo, Time hi) const {
  HARE_CHECK_MSG(!busy_intervals.empty(),
                 "busy_fraction requires record_timeline");
  HARE_CHECK_MSG(hi > lo, "empty window");
  const auto& intervals =
      busy_intervals[static_cast<std::size_t>(gpu.value())];
  Time busy = 0.0;
  for (const auto& [start, end] : intervals) {
    busy += std::max(0.0, std::min(end, hi) - std::max(start, lo));
  }
  return busy / (hi - lo);
}

Simulator::Simulator(const cluster::Cluster& cluster,
                     const workload::JobSet& jobs,
                     const profiler::TimeTable& actual, SimConfig config)
    : cluster_(cluster), jobs_(jobs), actual_(actual), config_(config) {
  HARE_CHECK_MSG(actual.job_count() == jobs.job_count(),
                 "time table covers " << actual.job_count() << " jobs, set has "
                                      << jobs.job_count());
  HARE_CHECK_MSG(actual.gpu_count() == cluster.gpu_count(),
                 "time table covers " << actual.gpu_count()
                                      << " GPUs, cluster has "
                                      << cluster.gpu_count());
}

SimResult Simulator::run(const Schedule& schedule) const {
  SimScratch scratch;
  return run(schedule, scratch);
}

SimResult Simulator::run(const Schedule& schedule, SimScratch& state) const {
  using detail::EventKind;
  using detail::EventPayload;
  using detail::GpuState;
  using detail::JobState;
  using detail::RoundState;
  using detail::SeqEntry;
  using detail::kTimeEps;
  using Phase = detail::JobState::Phase;

  HARE_SPAN("sim", "sim.run");
  HARE_CHECK_MSG(schedule.gpu_count() == cluster_.gpu_count(),
                 "schedule covers " << schedule.gpu_count()
                                    << " GPUs, cluster has "
                                    << cluster_.gpu_count());
  validate_schedule(schedule, jobs_);

  const std::size_t task_count = jobs_.task_count();
  const std::size_t gpu_count = cluster_.gpu_count();
  detail::SimScratchImpl& scratch = *state.impl_;
  const bool faulty =
      config_.fault_plan != nullptr && !config_.fault_plan->events.empty();
  const bool can_replan = config_.replan != nullptr && *config_.replan;

  // Pre-drawn per-task noise keeps actual durations independent of event
  // order (deterministic replay regardless of schedule shape). With noise
  // off (exact simulator mode) the vectors are skipped entirely.
  const bool with_noise = config_.runtime_noise_cv > 0.0;
  std::vector<double>& tc_noise = scratch.tc_noise;
  std::vector<double>& ts_noise = scratch.ts_noise;
  if (with_noise) {
    tc_noise.assign(task_count, 1.0);
    ts_noise.assign(task_count, 1.0);
    common::Rng rng(config_.noise_seed);
    const double cv = config_.runtime_noise_cv;
    const double sigma = std::sqrt(std::log(1.0 + cv * cv));
    for (std::size_t i = 0; i < task_count; ++i) {
      tc_noise[i] = rng.log_normal(-sigma * sigma / 2.0, sigma);
      ts_noise[i] = rng.log_normal(-sigma * sigma / 2.0, sigma);
    }
  }

  // Memoized lookups: per-(model, GPU-type) switch costs and per-job model
  // info, built once instead of re-derived at every task start.
  const switching::SwitchCostModel switch_model(config_.switching);
  scratch.switch_table.build(switch_model);
  scratch.job_info.assign(jobs_.job_count(), {});
  for (const auto& job : jobs_.jobs()) {
    const workload::ModelSpec& model = workload::model_spec(job.spec.model);
    auto& info = scratch.job_info[static_cast<std::size_t>(job.id.value())];
    info.model = job.spec.model;
    info.footprint =
        workload::task_memory_footprint(model, job.effective_batch_size());
    info.state_bytes = workload::model_state_bytes(model);
  }

  const bool with_memory =
      config_.use_memory_manager &&
      config_.switching.policy == switching::SwitchPolicy::Hare;

  std::vector<GpuState>& gpus = scratch.gpus;
  gpus.assign(gpu_count, {});
  for (std::size_t g = 0; g < gpu_count; ++g) {
    if (with_memory) {
      gpus[g].memory.emplace(
          cluster_.gpu(GpuId(static_cast<int>(g))).spec().memory);
    }
  }

  // The schedule's sequences become the mutable per-GPU queues: faults
  // stale-out entries via epochs and replans append new ones.
  std::vector<std::vector<SeqEntry>>& seq = scratch.seq;
  seq.resize(gpu_count);
  for (std::size_t g = 0; g < gpu_count; ++g) {
    const auto& source = schedule.sequences[g];
    seq[g].clear();
    seq[g].reserve(source.size());
    for (const TaskId task : source) seq[g].push_back(SeqEntry{task, 0});
  }

  std::vector<JobState>& job_states = scratch.job_states;
  job_states.resize(jobs_.job_count());
  for (const auto& job : jobs_.jobs()) {
    auto& js = job_states[static_cast<std::size_t>(job.id.value())];
    js.phase = Phase::Active;
    js.plan_epoch = 0;
    js.checkpoint = 0;
    js.release = 0.0;
    js.failed_at = -1.0;
    js.restart_started = false;
    js.rounds.resize(job.rounds());
    for (auto& round : js.rounds) {
      round.remaining = static_cast<int>(job.tasks_per_round());
      round.barrier = 0.0;
      round.done = false;
      round.waiters.clear();
    }
  }

  SimResult result;
  result.tasks.assign(task_count, {});
  result.jobs.resize(jobs_.job_count());
  for (const auto& job : jobs_.jobs()) {
    auto& record = result.jobs[static_cast<std::size_t>(job.id.value())];
    record = {};
    record.arrival = job.spec.arrival;
    record.weight = job.spec.weight;
  }
  result.gpus.assign(gpu_count, {});
  if (config_.record_timeline) result.busy_intervals.resize(gpu_count);

  if (scratch.events.backend() != config_.event_queue) {
    scratch.events = EventQueue<EventPayload>(config_.event_queue);
  } else {
    scratch.events.clear();
  }
  EventQueue<EventPayload>& events = scratch.events;
  events.reserve(gpu_count * 2 + 16);
  NetworkModel network(cluster_);
  auto& inflight_syncs = scratch.inflight_syncs;
  inflight_syncs.clear();

  // --- helpers -----------------------------------------------------------

  const auto job_state_of = [&](TaskId task_id) -> JobState& {
    return job_states[static_cast<std::size_t>(
        jobs_.task(task_id).job.value())];
  };

  auto start_task = [&](GpuId gpu_id, TaskId task_id, Time now, Time ready) {
    GpuState& gpu = gpus[static_cast<std::size_t>(gpu_id.value())];
    const workload::Task& task = jobs_.task(task_id);
    const auto& info =
        scratch.job_info[static_cast<std::size_t>(task.job.value())];
    const cluster::Gpu& hw = cluster_.gpu(gpu_id);

    const switching::SpeculativeMemoryManager* memory_view =
        gpu.memory ? &*gpu.memory : nullptr;
    const switching::SwitchBreakdown& breakdown = scratch.switch_table.lookup(
        task.job, info.model, hw.type, gpu.previous_job, memory_view);
    if (gpu.memory) {
      gpu.memory->on_task_start(task.job, info.footprint, info.state_bytes);
    }

    const double tc =
        (with_noise
             ? actual_.tc(task.job, gpu_id) *
                   tc_noise[static_cast<std::size_t>(task_id.value())]
             : actual_.tc(task.job, gpu_id)) *
        gpu.slow_factor;
    Time switch_time = breakdown.total();

    // First post-restart attempt of a displaced job: charge the checkpoint
    // restore and close the failure -> progress recovery-latency window.
    JobState& js = job_states[static_cast<std::size_t>(task.job.value())];
    if (js.failed_at >= 0.0 && !js.restart_started) {
      js.restart_started = true;
      const Time latency = now - js.failed_at;
      js.failed_at = -1.0;
      result.faults.recovery_latencies.push_back(latency);
      result.faults.restart_overhead += config_.retry.restart_overhead_s;
      switch_time += config_.retry.restart_overhead_s;
      static obs::Histogram& recovery_latency = obs::histogram(
          "fault.recovery_latency_us", obs::latency_bounds_us());
      recovery_latency.record(latency * 1e6);  // virtual seconds -> µs
    }

    TaskRecord& record =
        result.tasks[static_cast<std::size_t>(task_id.value())];
    record.gpu = gpu_id;
    record.ready = ready;
    record.start = now;
    record.switch_time = switch_time;
    record.compute_start = now + switch_time;
    record.compute_end = record.compute_start + tc;
    record.model_resident = breakdown.model_resident;
    ++record.attempts;

    GpuRecord& gpu_record =
        result.gpus[static_cast<std::size_t>(gpu_id.value())];
    gpu_record.busy_switch += switch_time;
    gpu_record.busy_compute += tc;
    gpu_record.last_busy_end = record.compute_end;
    ++gpu_record.task_count;
    if (config_.record_timeline) {
      result.busy_intervals[static_cast<std::size_t>(gpu_id.value())]
          .emplace_back(now, record.compute_end);
    }

    auto& stat = result.switch_stats[static_cast<std::size_t>(info.model)];
    stat.total_compute_time += tc;
    if (gpu.previous_job && *gpu.previous_job != task.job) {
      ++stat.switch_count;
      stat.total_switch_time += switch_time;
      if (breakdown.model_resident) ++stat.resident_hits;
      static obs::Histogram& preempt_latency = obs::histogram(
          "switch.preempt_latency_us", obs::latency_bounds_us());
      preempt_latency.record(switch_time * 1e6);  // virtual seconds -> µs
    }

    gpu.busy = true;
    gpu.current_task = task_id;
    gpu.previous_job = task.job;
    ++gpu.next_index;
    events.push(record.compute_end,
                EventPayload{EventKind::ComputeDone, gpu_id, task_id,
                             gpu.kill_epoch});
  };

  auto try_start = [&](GpuId gpu_id, Time now) {
    GpuState& gpu = gpus[static_cast<std::size_t>(gpu_id.value())];
    if (!gpu.alive || gpu.busy || gpu.waiting) return;
    const auto& sequence = seq[static_cast<std::size_t>(gpu_id.value())];
    // Skip entries staled by job termination or displacement.
    while (gpu.next_index < sequence.size()) {
      const SeqEntry entry = sequence[gpu.next_index];
      const JobState& js = job_state_of(entry.task);
      if (js.phase == Phase::Active && entry.epoch == js.plan_epoch) break;
      ++gpu.next_index;
    }
    if (gpu.next_index >= sequence.size()) return;

    const TaskId task_id = sequence[gpu.next_index].task;
    const workload::Task& task = jobs_.task(task_id);
    const workload::Job& job = jobs_.job(task.job);
    JobState& js = job_states[static_cast<std::size_t>(task.job.value())];

    Time ready = std::max(job.spec.arrival, js.release);
    if (task.round > 0) {
      RoundState& prev =
          js.rounds[static_cast<std::size_t>(task.round - 1)];
      if (!prev.done) {
        prev.waiters.push_back(gpu_id);
        gpu.waiting = true;
        return;
      }
      ready = std::max(ready, prev.barrier);
    }

    if (ready > now + kTimeEps) {
      events.push(ready, EventPayload{EventKind::TryStart, gpu_id, TaskId{}});
      return;
    }
    start_task(gpu_id, task_id, now, ready);
  };

  auto handle_sync_done = [&](TaskId task_id, std::uint32_t epoch, Time now) {
    const workload::Task& task = jobs_.task(task_id);
    JobState& job_state =
        job_states[static_cast<std::size_t>(task.job.value())];
    // A sync from before the job was cancelled/displaced: drop it.
    if (job_state.phase != Phase::Active || epoch != job_state.plan_epoch) {
      return;
    }
    result.tasks[static_cast<std::size_t>(task_id.value())].sync_end = now;

    RoundState& round =
        job_state.rounds[static_cast<std::size_t>(task.round)];
    round.barrier = std::max(round.barrier, now);
    HARE_CHECK_MSG(round.remaining > 0, "round over-completed");
    if (--round.remaining > 0) return;

    round.done = true;
    const workload::Job& job = jobs_.job(task.job);
    job_state.checkpoint =
        std::max(job_state.checkpoint, static_cast<RoundIndex>(task.round) + 1);
    if (static_cast<std::uint32_t>(task.round) + 1 == job.rounds()) {
      job_state.phase = Phase::Finished;
      auto& record = result.jobs[static_cast<std::size_t>(task.job.value())];
      record.completion = round.barrier;
      for (auto& gpu : gpus) {
        if (gpu.memory) gpu.memory->on_job_finished(task.job);
      }
    }
    // Wake GPUs whose heads were blocked on this barrier. Their start time
    // is the barrier, which may be earlier than `now` only by sync-ordering
    // slack; use the barrier as the ready stamp.
    std::vector<GpuId> waiters = std::move(round.waiters);
    round.waiters.clear();
    for (GpuId waiter : waiters) {
      gpus[static_cast<std::size_t>(waiter.value())].waiting = false;
      try_start(waiter, now);
    }
  };

  auto handle_compute_done = [&](GpuId gpu_id, TaskId task_id,
                                 std::uint32_t epoch, Time now) {
    GpuState& gpu = gpus[static_cast<std::size_t>(gpu_id.value())];
    // The attempt was killed (GPU death or job displacement) mid-compute.
    if (epoch != gpu.kill_epoch) return;
    gpu.busy = false;
    gpu.current_task = TaskId{};
    if (gpu.memory) gpu.memory->on_task_complete(now);

    const workload::Task& task = jobs_.task(task_id);
    const std::uint32_t plan_epoch =
        job_states[static_cast<std::size_t>(task.job.value())].plan_epoch;
    if (config_.model_network_contention) {
      const workload::ModelSpec& model = workload::model_spec(
          scratch.job_info[static_cast<std::size_t>(task.job.value())].model);
      const double bytes =
          2.0 * static_cast<double>(model.parameter_bytes) *
          config_.sync_volume_factor;
      const auto id = network.start_transfer(
          cluster_.gpu(gpu_id).machine, bytes, now);
      inflight_syncs.emplace(
          id, detail::SimScratchImpl::SyncRef{task_id, plan_epoch});
    } else {
      const double ts =
          with_noise
              ? actual_.ts(task.job, gpu_id) *
                    ts_noise[static_cast<std::size_t>(task_id.value())]
              : actual_.ts(task.job, gpu_id);
      events.push(now + ts, EventPayload{EventKind::SyncDone, gpu_id, task_id,
                                         plan_epoch});
    }
    try_start(gpu_id, now);
  };

  // --- fault machinery ---------------------------------------------------

  // Undo the un-executed part of the running attempt's accounting and drop
  // its in-flight ComputeDone. The time actually burned (switch first,
  // then compute) stays in the GPU's busy totals and is counted as lost.
  auto kill_running_task = [&](GpuId gpu_id, Time now) {
    GpuState& gpu = gpus[static_cast<std::size_t>(gpu_id.value())];
    const TaskRecord& rec =
        result.tasks[static_cast<std::size_t>(gpu.current_task.value())];
    const Time executed = std::max(0.0, now - rec.start);
    const Time tc = rec.compute_end - rec.compute_start;
    const Time done_switch = std::min(executed, rec.switch_time);
    const Time done_compute = std::max(0.0, executed - rec.switch_time);
    GpuRecord& gpu_record =
        result.gpus[static_cast<std::size_t>(gpu_id.value())];
    gpu_record.busy_switch -= rec.switch_time - done_switch;
    gpu_record.busy_compute -= tc - done_compute;
    gpu_record.last_busy_end = now;
    --gpu_record.task_count;
    if (config_.record_timeline) {
      auto& intervals =
          result.busy_intervals[static_cast<std::size_t>(gpu_id.value())];
      if (!intervals.empty()) intervals.back().second = now;
    }
    ++result.faults.tasks_killed;
    result.faults.lost_compute += executed;
    ++gpu.kill_epoch;
    gpu.busy = false;
    gpu.current_task = TaskId{};
    if (gpu.memory) gpu.memory->on_task_complete(now);
  };

  // Invalidate every placement of a job: running attempts anywhere on the
  // cluster, queued entries (via the epoch bump), round progress past the
  // checkpoint, and barrier waiters (freed to re-examine their queues).
  auto kill_placements = [&](JobId job_id, Time now) {
    JobState& js = job_states[static_cast<std::size_t>(job_id.value())];
    ++js.plan_epoch;
    for (std::size_t g = 0; g < gpu_count; ++g) {
      GpuState& gpu = gpus[g];
      if (gpu.busy && gpu.current_task.valid() &&
          jobs_.task(gpu.current_task).job == job_id) {
        kill_running_task(GpuId(static_cast<int>(g)), now);
      }
    }
    const workload::Job& job = jobs_.job(job_id);
    for (std::size_t r = static_cast<std::size_t>(js.checkpoint);
         r < job.rounds(); ++r) {
      RoundState& round = js.rounds[r];
      round.remaining = static_cast<int>(job.tasks_per_round());
      round.barrier = 0.0;
      round.done = false;
      for (GpuId waiter : round.waiters) {
        gpus[static_cast<std::size_t>(waiter.value())].waiting = false;
      }
      round.waiters.clear();
    }
  };

  // A GPU dies: invalidate its queue and collect the jobs it displaces
  // (the running attempt's owner plus every job with live queued entries).
  auto fail_gpu = [&](GpuId gpu_id, Time now, std::vector<JobId>& affected) {
    GpuState& gpu = gpus[static_cast<std::size_t>(gpu_id.value())];
    if (!gpu.alive) return;
    gpu.alive = false;
    gpu.slow_factor = 1.0;
    ++result.faults.gpu_failures;
    if (gpu.busy) {
      affected.push_back(jobs_.task(gpu.current_task).job);
      kill_running_task(gpu_id, now);
    }
    ++gpu.kill_epoch;
    auto& sequence = seq[static_cast<std::size_t>(gpu_id.value())];
    for (std::size_t i = gpu.next_index; i < sequence.size(); ++i) {
      const SeqEntry entry = sequence[i];
      const JobState& js = job_state_of(entry.task);
      if (js.phase == Phase::Active && entry.epoch == js.plan_epoch) {
        affected.push_back(jobs_.task(entry.task).job);
      }
    }
    gpu.next_index = sequence.size();
    gpu.previous_job.reset();
    gpu.memory.reset();
  };

  // Ask the replan hook to place the displaced jobs' remaining rounds on
  // the surviving cluster, validate the answer, and append it to the
  // queues. A job the hook cannot fully place is dead-lettered.
  auto request_replan = [&](const std::vector<JobId>& retry_jobs, Time now) {
    if (retry_jobs.empty()) return;
    HARE_SPAN_ARG("fault", "fault.replan", "vt", now);
    fault::ReplanRequest request;
    request.now = now;
    request.gpu_alive.resize(gpu_count);
    request.gpu_busy_until.assign(gpu_count, now);
    for (std::size_t g = 0; g < gpu_count; ++g) {
      const GpuState& gpu = gpus[g];
      request.gpu_alive[g] = gpu.alive ? 1 : 0;
      if (!gpu.alive) {
        request.gpu_busy_until[g] = kTimeInfinity;
        continue;
      }
      Time until = now;
      if (gpu.busy) {
        until = result
                    .tasks[static_cast<std::size_t>(gpu.current_task.value())]
                    .compute_end;
      }
      // Rough tail estimate: compute time of the live queued entries.
      const auto& sequence = seq[g];
      for (std::size_t i = gpu.next_index; i < sequence.size(); ++i) {
        const SeqEntry entry = sequence[i];
        const JobState& js = job_state_of(entry.task);
        if (js.phase == Phase::Active && entry.epoch == js.plan_epoch) {
          until += actual_.tc(jobs_.task(entry.task).job,
                              GpuId(static_cast<int>(g)));
        }
      }
      request.gpu_busy_until[g] = until;
    }
    std::vector<char> requested(jobs_.job_count(), 0);
    for (const JobId job_id : retry_jobs) {
      const std::size_t j = static_cast<std::size_t>(job_id.value());
      const JobState& js = job_states[j];
      request.jobs.push_back(fault::ReplanRequest::JobRequest{
          job_id, js.checkpoint, js.release, result.jobs[j].restarts});
      requested[j] = 1;
    }

    ++result.faults.replans;
    static obs::Counter& replans = obs::counter("fault.replans");
    replans.add();
    const fault::ReplanResult replanned = (*config_.replan)(request);
    HARE_CHECK_MSG(replanned.appended.size() <= gpu_count,
                   "replan covers more GPUs than the cluster has");

    std::vector<char> seen(task_count, 0);
    std::vector<std::size_t> appended_count(jobs_.job_count(), 0);
    for (std::size_t g = 0; g < replanned.appended.size(); ++g) {
      if (replanned.appended[g].empty()) continue;
      HARE_CHECK_MSG(gpus[g].alive, "replan placed work on a dead GPU");
      for (const TaskId task_id : replanned.appended[g]) {
        const workload::Task& task = jobs_.task(task_id);
        const std::size_t j = static_cast<std::size_t>(task.job.value());
        HARE_CHECK_MSG(requested[j],
                       "replan placed a task of an unrequested job");
        JobState& js = job_states[j];
        HARE_CHECK_MSG(task.round >= js.checkpoint,
                       "replan re-placed an already-completed round");
        HARE_CHECK_MSG(!seen[static_cast<std::size_t>(task_id.value())],
                       "replan placed a task twice");
        seen[static_cast<std::size_t>(task_id.value())] = 1;
        seq[g].push_back(SeqEntry{task_id, js.plan_epoch});
        ++appended_count[j];
      }
    }
    for (const JobId job_id : retry_jobs) {
      const std::size_t j = static_cast<std::size_t>(job_id.value());
      JobState& js = job_states[j];
      const workload::Job& job = jobs_.job(job_id);
      const std::size_t expected =
          (job.rounds() - static_cast<std::size_t>(js.checkpoint)) *
          job.tasks_per_round();
      if (appended_count[j] == expected) continue;
      // Partial/absent placement — there is no capacity for this job on
      // the survivors. Stale its appended entries and dead-letter it.
      ++js.plan_epoch;
      js.phase = Phase::Dead;
      auto& record = result.jobs[j];
      record.outcome = JobOutcome::DeadLettered;
      record.completion = now;
      ++result.faults.dead_letters;
      static obs::Counter& dead_letters = obs::counter("fault.dead_letters");
      dead_letters.add();
    }
  };

  // Displaced jobs: checkpoint, decide retry vs. dead-letter, replan.
  auto handle_failures = [&](std::vector<JobId>& affected, Time now) {
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    std::vector<JobId> retry_jobs;
    for (const JobId job_id : affected) {
      const std::size_t j = static_cast<std::size_t>(job_id.value());
      JobState& js = job_states[j];
      if (js.phase != Phase::Active) continue;
      kill_placements(job_id, now);
      js.failed_at = now;
      js.restart_started = false;
      auto& record = result.jobs[j];
      if (record.restarts + 1 > config_.retry.max_retries || !can_replan) {
        js.phase = Phase::Dead;
        record.outcome = JobOutcome::DeadLettered;
        record.completion = now;
        ++result.faults.dead_letters;
        static obs::Counter& dead_letters = obs::counter("fault.dead_letters");
        dead_letters.add();
        continue;
      }
      ++record.restarts;
      ++result.faults.restarts;
      static obs::Counter& restarts = obs::counter("fault.job_restarts");
      restarts.add();
      js.release = now + config_.retry.backoff(record.restarts);
      retry_jobs.push_back(job_id);
    }
    request_replan(retry_jobs, now);
  };

  auto recover_gpu = [&](GpuId gpu_id, Time now) -> bool {
    GpuState& gpu = gpus[static_cast<std::size_t>(gpu_id.value())];
    if (gpu.alive) return false;
    gpu.alive = true;
    gpu.busy = false;
    gpu.waiting = false;
    gpu.slow_factor = 1.0;
    gpu.current_task = TaskId{};
    gpu.previous_job.reset();
    if (with_memory) {
      gpu.memory.emplace(cluster_.gpu(gpu_id).spec().memory);  // cold
    }
    ++result.faults.recoveries;
    static_cast<void>(now);
    return true;
  };

  // Capacity came back: displaced jobs that have not yet made post-restart
  // progress get a fresh replan onto the richer cluster. Jobs already
  // executing their restarted placement keep it; dead jobs stay dead.
  auto replan_after_recovery = [&](Time now) {
    if (!can_replan) return;
    std::vector<JobId> retry_jobs;
    for (const auto& job : jobs_.jobs()) {
      JobState& js = job_states[static_cast<std::size_t>(job.id.value())];
      if (js.phase != Phase::Active || js.plan_epoch == 0 ||
          js.restart_started || js.failed_at < 0.0) {
        continue;
      }
      kill_placements(job.id, now);
      js.release = std::max(js.release, now);
      retry_jobs.push_back(job.id);
    }
    request_replan(retry_jobs, now);
  };

  auto handle_fault = [&](std::size_t index, Time now) {
    const fault::FaultEvent& fault_event = config_.fault_plan->events[index];
    if (obs::Tracer::instance().enabled()) {
      obs::instant("fault", "fault.event", fault::describe(fault_event));
    }
    switch (fault_event.kind) {
      case fault::FaultKind::MachineFail: {
        const cluster::Machine& machine = cluster_.machine(fault_event.machine);
        std::vector<JobId> affected;
        bool any = false;
        for (const GpuId gpu_id : machine.gpus) {
          const bool was_alive =
              gpus[static_cast<std::size_t>(gpu_id.value())].alive;
          fail_gpu(gpu_id, now, affected);
          any = any || was_alive;
        }
        if (any) {
          ++result.faults.machine_failures;
          static obs::Counter& machine_failures =
              obs::counter("fault.machine_failures");
          machine_failures.add();
        }
        handle_failures(affected, now);
        break;
      }
      case fault::FaultKind::GpuFail: {
        std::vector<JobId> affected;
        fail_gpu(fault_event.gpu, now, affected);
        static obs::Counter& gpu_failures = obs::counter("fault.gpu_failures");
        gpu_failures.add();
        handle_failures(affected, now);
        break;
      }
      case fault::FaultKind::MachineRecover: {
        const cluster::Machine& machine = cluster_.machine(fault_event.machine);
        bool any = false;
        for (const GpuId gpu_id : machine.gpus) {
          any = recover_gpu(gpu_id, now) || any;
        }
        if (any) {
          static obs::Counter& recoveries = obs::counter("fault.recoveries");
          recoveries.add();
          replan_after_recovery(now);
        }
        break;
      }
      case fault::FaultKind::GpuRecover: {
        if (recover_gpu(fault_event.gpu, now)) {
          static obs::Counter& recoveries = obs::counter("fault.recoveries");
          recoveries.add();
          replan_after_recovery(now);
        }
        break;
      }
      case fault::FaultKind::JobCancel: {
        JobState& js =
            job_states[static_cast<std::size_t>(fault_event.job.value())];
        if (js.phase != Phase::Active) break;
        kill_placements(fault_event.job, now);
        js.phase = Phase::Cancelled;
        auto& record =
            result.jobs[static_cast<std::size_t>(fault_event.job.value())];
        record.outcome = JobOutcome::Cancelled;
        record.completion = now;
        ++result.faults.cancellations;
        static obs::Counter& cancellations =
            obs::counter("fault.cancellations");
        cancellations.add();
        for (auto& gpu : gpus) {
          if (gpu.memory) gpu.memory->on_job_finished(fault_event.job);
        }
        break;
      }
      case fault::FaultKind::JobComplete:
        // Serve-layer event: the simulator derives completions from task
        // execution itself, so a scripted completion carries no state here.
        break;
      case fault::FaultKind::StragglerStart: {
        GpuState& gpu =
            gpus[static_cast<std::size_t>(fault_event.gpu.value())];
        if (gpu.alive) gpu.slow_factor = std::max(1.0, fault_event.factor);
        break;
      }
      case fault::FaultKind::StragglerEnd: {
        GpuState& gpu =
            gpus[static_cast<std::size_t>(fault_event.gpu.value())];
        gpu.slow_factor = 1.0;
        break;
      }
    }
    // Freed/recovered/replanned GPUs re-examine their queues. try_start is
    // a cheap no-op for busy/waiting/dead GPUs, and the ascending sweep
    // keeps the visit order deterministic.
    for (std::size_t g = 0; g < gpu_count; ++g) {
      try_start(GpuId(static_cast<int>(g)), now);
    }
  };

  // --- main loop ---------------------------------------------------------

  // Fault events enter first so at equal timestamps a fault pops before
  // the task event it races (lower sequence number), which keeps fault
  // runs bit-identical across queue backends and sweep parallelism.
  if (faulty) {
    for (std::size_t i = 0; i < config_.fault_plan->events.size(); ++i) {
      const fault::FaultEvent& fault_event = config_.fault_plan->events[i];
      HARE_CHECK_MSG(
          fault_event.kind == fault::FaultKind::MachineFail ||
                  fault_event.kind == fault::FaultKind::MachineRecover
              ? fault_event.machine.valid() &&
                    static_cast<std::size_t>(fault_event.machine.value()) <
                        cluster_.machine_count()
          : fault_event.kind == fault::FaultKind::JobCancel
              ? fault_event.job.valid() &&
                    static_cast<std::size_t>(fault_event.job.value()) <
                        jobs_.job_count()
              : fault_event.gpu.valid() &&
                    static_cast<std::size_t>(fault_event.gpu.value()) <
                        gpu_count,
          "fault plan event " << i << " targets an id out of range");
      events.push(std::max(0.0, fault_event.time),
                  EventPayload{EventKind::Fault, GpuId{}, TaskId{},
                               static_cast<std::uint32_t>(i)});
    }
  }

  for (std::size_t g = 0; g < gpu_count; ++g) {
    events.push(0.0, EventPayload{EventKind::TryStart,
                                  GpuId(static_cast<int>(g)), TaskId{}});
  }

  static obs::Counter& events_processed =
      obs::counter("sim.events_processed");
  while (!events.empty() || network.active_count() > 0) {
    const Time network_time = network.next_completion();
    const Time event_time =
        events.empty() ? kTimeInfinity : events.top().time;

    if (network_time <= event_time) {
      HARE_SPAN_ARG("sim", "sim.event.network_sync", "vt", network_time);
      for (const auto transfer : network.complete_at(network_time)) {
        const auto it = inflight_syncs.find(transfer);
        HARE_CHECK_MSG(it != inflight_syncs.end(), "unknown transfer");
        // RPC/aggregation latency lands after the transfer completes.
        events.push(network_time + config_.sync_latency_s,
                    EventPayload{EventKind::SyncDone, GpuId{},
                                 it->second.task, it->second.epoch});
        inflight_syncs.erase(it);
        events_processed.add();
      }
      continue;
    }

    const auto event = events.pop();
    events_processed.add();
    switch (event.payload.kind) {
      case EventKind::TryStart: {
        HARE_SPAN_ARG("sim", "sim.event.try_start", "vt", event.time);
        try_start(event.payload.gpu, event.time);
        break;
      }
      case EventKind::ComputeDone: {
        HARE_SPAN_ARG("sim", "sim.event.compute_done", "vt", event.time);
        handle_compute_done(event.payload.gpu, event.payload.task,
                            event.payload.epoch, event.time);
        break;
      }
      case EventKind::SyncDone: {
        HARE_SPAN_ARG("sim", "sim.event.sync_done", "vt", event.time);
        handle_sync_done(event.payload.task, event.payload.epoch, event.time);
        break;
      }
      case EventKind::Fault: {
        HARE_SPAN_ARG("sim", "sim.event.fault", "vt", event.time);
        handle_fault(event.payload.epoch, event.time);
        break;
      }
    }
  }

  // --- aggregates --------------------------------------------------------

  for (const auto& job : jobs_.jobs()) {
    const auto& js = job_states[static_cast<std::size_t>(job.id.value())];
    HARE_CHECK_MSG(js.phase != Phase::Active,
                   "job " << job.id
                          << " did not finish (scheduler or replan bug)");
  }
  for (const auto& record : result.jobs) {
    if (record.outcome != JobOutcome::Completed) continue;
    result.makespan = std::max(result.makespan, record.completion);
    result.weighted_completion += record.weight * record.completion;
    result.weighted_jct += record.weight * record.jct();
  }
  for (const auto& gpu_record : result.gpus) {
    result.makespan = std::max(result.makespan, gpu_record.last_busy_end);
  }
  common::log_debug("sim: run finished, makespan ", result.makespan,
                    " s, weighted JCT ", result.weighted_jct, " s");
  return result;
}

}  // namespace hare::sim
