#include "sim/schedule.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <queue>

#include "common/error.hpp"

namespace hare::sim {

void validate_schedule(const Schedule& schedule,
                       const workload::JobSet& jobs) {
  const std::size_t task_count = jobs.task_count();
  std::vector<int> seen(task_count, 0);
  for (const auto& sequence : schedule.sequences) {
    for (TaskId id : sequence) {
      HARE_CHECK_MSG(id.valid() &&
                         static_cast<std::size_t>(id.value()) < task_count,
                     "schedule references unknown task " << id);
      ++seen[static_cast<std::size_t>(id.value())];
    }
  }
  for (std::size_t i = 0; i < task_count; ++i) {
    HARE_CHECK_MSG(seen[i] == 1, "task " << i << " scheduled " << seen[i]
                                         << " times (expected exactly once)");
  }

  // Kahn's algorithm over per-GPU chain edges + round-precedence edges.
  // in-degree counts; round r+1 tasks depend on all round r tasks of the
  // same job, which we compress by tracking per-round completion counters.
  std::vector<int> chain_pred(task_count, 0);  // 1 if a task precedes on GPU
  std::vector<TaskId> chain_next(task_count);
  for (const auto& sequence : schedule.sequences) {
    for (std::size_t k = 0; k + 1 < sequence.size(); ++k) {
      chain_next[static_cast<std::size_t>(sequence[k].value())] =
          sequence[k + 1];
      chain_pred[static_cast<std::size_t>(sequence[k + 1].value())] = 1;
    }
  }

  // remaining_round[j][r] = tasks of round r of job j not yet "executed".
  std::vector<std::vector<int>> remaining_round(jobs.job_count());
  for (const auto& job : jobs.jobs()) {
    remaining_round[static_cast<std::size_t>(job.id.value())]
        .assign(job.rounds(), static_cast<int>(job.tasks_per_round()));
  }

  auto ready = [&](TaskId id) {
    const workload::Task& task = jobs.task(id);
    if (chain_pred[static_cast<std::size_t>(id.value())] != 0) return false;
    if (task.round == 0) return true;
    return remaining_round[static_cast<std::size_t>(task.job.value())]
                          [static_cast<std::size_t>(task.round - 1)] == 0;
  };

  std::queue<TaskId> frontier;
  for (const auto& task : jobs.tasks()) {
    if (ready(task.id)) frontier.push(task.id);
  }

  std::size_t executed = 0;
  std::vector<char> done(task_count, 0);
  while (!frontier.empty()) {
    const TaskId id = frontier.front();
    frontier.pop();
    auto& flag = done[static_cast<std::size_t>(id.value())];
    if (flag) continue;
    if (!ready(id)) continue;  // re-queued before its barrier actually fell
    flag = 1;
    ++executed;
    const workload::Task& task = jobs.task(id);
    auto& remaining = remaining_round[static_cast<std::size_t>(
        task.job.value())][static_cast<std::size_t>(task.round)];
    --remaining;

    // Chain successor may now be ready.
    const TaskId next = chain_next[static_cast<std::size_t>(id.value())];
    if (next.valid()) {
      chain_pred[static_cast<std::size_t>(next.value())] = 0;
      if (ready(next)) frontier.push(next);
    }
    // Next round of this job may now be ready.
    if (remaining == 0) {
      const workload::Job& job = jobs.job(task.job);
      const RoundIndex next_round = task.round + 1;
      if (static_cast<std::uint32_t>(next_round) < job.rounds()) {
        for (TaskId t : jobs.round_tasks(task.job, next_round)) {
          if (ready(t)) frontier.push(t);
        }
      }
    }
  }
  HARE_CHECK_MSG(executed == task_count,
                 "schedule has a dependency cycle: only "
                     << executed << " of " << task_count
                     << " tasks are executable");
}

}  // namespace hare::sim

namespace hare::sim {

namespace {
constexpr std::string_view kPlanHeader = "hare-plan-v1";
}

void save_schedule(const Schedule& schedule, std::ostream& os) {
  os << kPlanHeader << ' ' << schedule.gpu_count() << ' '
     << schedule.predicted_start.size() << ' ';
  os.precision(17);
  os << schedule.predicted_objective << '\n';
  for (const auto& sequence : schedule.sequences) {
    os << sequence.size();
    for (TaskId id : sequence) os << ' ' << id.value();
    os << '\n';
  }
  for (Time t : schedule.predicted_start) os << t << ' ';
  os << '\n';
}

Schedule load_schedule(std::istream& is, const workload::JobSet& jobs) {
  std::string header;
  std::size_t gpu_count = 0;
  std::size_t start_count = 0;
  Schedule schedule;
  is >> header >> gpu_count >> start_count >> schedule.predicted_objective;
  HARE_CHECK_MSG(header == kPlanHeader, "not a hare plan (bad header)");
  schedule.sequences.resize(gpu_count);
  for (auto& sequence : schedule.sequences) {
    std::size_t length = 0;
    is >> length;
    HARE_CHECK_MSG(static_cast<bool>(is), "truncated plan (sequence length)");
    sequence.reserve(length);
    for (std::size_t k = 0; k < length; ++k) {
      int task = -1;
      is >> task;
      HARE_CHECK_MSG(static_cast<bool>(is), "truncated plan (task id)");
      sequence.push_back(TaskId(task));
    }
  }
  schedule.predicted_start.resize(start_count);
  for (auto& t : schedule.predicted_start) {
    is >> t;
    HARE_CHECK_MSG(static_cast<bool>(is), "truncated plan (start times)");
  }
  validate_schedule(schedule, jobs);
  return schedule;
}

void save_schedule_file(const Schedule& schedule, const std::string& path) {
  std::ofstream os(path);
  HARE_CHECK_MSG(os.good(), "cannot open plan file for writing: " << path);
  save_schedule(schedule, os);
}

Schedule load_schedule_file(const std::string& path,
                            const workload::JobSet& jobs) {
  std::ifstream is(path);
  HARE_CHECK_MSG(is.good(), "cannot open plan file: " << path);
  return load_schedule(is, jobs);
}

}  // namespace hare::sim
