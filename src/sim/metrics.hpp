// Simulation result records and aggregate metrics.
//
// The simulator fills one record per task, job, and GPU, plus per-model
// switching statistics (Table 3) and optional busy-interval timelines
// (utilization figures). Aggregates cover the paper's reported metrics:
// total weighted job completion time (the Hare_Sched objective), makespan,
// JCT distribution (Fig 13's CDF), and per-GPU utilization.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "workload/model_zoo.hpp"

namespace hare::sim {

struct TaskRecord {
  GpuId gpu;
  Time ready = 0.0;          ///< all predecessors (arrival/barrier) satisfied
  Time start = 0.0;          ///< switching begins
  Time switch_time = 0.0;
  Time compute_start = 0.0;
  Time compute_end = 0.0;
  Time sync_end = 0.0;
  bool model_resident = false;
  /// How many times the task was started; > 1 means earlier attempts were
  /// killed by a fault and the record holds the last attempt's times.
  std::uint32_t attempts = 0;
};

/// How a job left the system. Only Completed jobs count toward the
/// weighted-completion/JCT aggregates.
enum class JobOutcome : std::uint8_t {
  Completed,
  Cancelled,     ///< user cancellation (JobCancel fault event)
  DeadLettered,  ///< retries exhausted or no capacity to replan onto
};

struct JobRecord {
  Time arrival = 0.0;
  Time completion = 0.0;  ///< last round's barrier (all tasks synced); for
                          ///< Cancelled/DeadLettered, when it left the system
  double weight = 1.0;
  JobOutcome outcome = JobOutcome::Completed;
  std::uint32_t restarts = 0;  ///< checkpoint-restarts consumed

  [[nodiscard]] Time jct() const { return completion - arrival; }
};

struct GpuRecord {
  Time busy_compute = 0.0;
  Time busy_switch = 0.0;
  Time last_busy_end = 0.0;
  std::size_t task_count = 0;

  /// Compute utilization relative to a horizon (usually the makespan).
  [[nodiscard]] double utilization(Time horizon) const {
    return horizon > 0.0 ? busy_compute / horizon : 0.0;
  }
};

struct SwitchStat {
  std::size_t switch_count = 0;   ///< cross-job switches
  Time total_switch_time = 0.0;
  Time total_compute_time = 0.0;  ///< tasks of this model, for the % column
  std::size_t resident_hits = 0;  ///< speculative-memory hits

  [[nodiscard]] Time mean_switch() const {
    return switch_count ? total_switch_time /
                              static_cast<double>(switch_count)
                        : 0.0;
  }
  /// Switching share of total task time (Table 3's parenthesized %).
  [[nodiscard]] double overhead_fraction() const {
    const Time denom = total_switch_time + total_compute_time;
    return denom > 0.0 ? total_switch_time / denom : 0.0;
  }
};

/// Aggregate fault-injection accounting; all zeros on a fault-free run.
struct FaultStats {
  std::size_t machine_failures = 0;
  std::size_t gpu_failures = 0;  ///< individual GPU deaths (incl. machine)
  std::size_t recoveries = 0;
  std::size_t cancellations = 0;
  std::size_t restarts = 0;      ///< checkpoint-restarts across all jobs
  std::size_t dead_letters = 0;
  std::size_t replans = 0;       ///< replan callback invocations
  std::size_t tasks_killed = 0;  ///< in-flight attempts lost to faults
  Time lost_compute = 0.0;       ///< busy time wasted on killed attempts
  Time restart_overhead = 0.0;   ///< checkpoint-restore switching charged
  /// Failure -> first-rescheduled-task-start latency, one entry per
  /// restart that made progress.
  std::vector<Time> recovery_latencies;
};

struct SimResult {
  std::vector<TaskRecord> tasks;  ///< by TaskId value
  std::vector<JobRecord> jobs;    ///< by JobId value
  std::vector<GpuRecord> gpus;    ///< by GpuId value
  std::array<SwitchStat, workload::kModelCount> switch_stats{};
  FaultStats faults;

  Time makespan = 0.0;
  /// The Hare_Sched objective: sum over jobs of w_n * C_n.
  double weighted_completion = 0.0;
  /// Flow-time variant: sum of w_n * (C_n - a_n); the JCT figures use this.
  double weighted_jct = 0.0;

  /// Busy (switch+compute) intervals per GPU; filled when
  /// SimConfig::record_timeline is set.
  std::vector<std::vector<std::pair<Time, Time>>> busy_intervals;

  [[nodiscard]] common::Distribution jct_distribution() const {
    common::Distribution d;
    for (const auto& job : jobs) {
      if (job.outcome == JobOutcome::Completed) d.add(job.jct());
    }
    return d;
  }

  [[nodiscard]] double mean_gpu_utilization() const {
    if (gpus.empty() || makespan <= 0.0) return 0.0;
    double sum = 0.0;
    for (const auto& g : gpus) sum += g.utilization(makespan);
    return sum / static_cast<double>(gpus.size());
  }

  [[nodiscard]] Time total_switch_time() const {
    Time total = 0.0;
    for (const auto& s : switch_stats) total += s.total_switch_time;
    return total;
  }

  /// Fraction of a time window [lo, hi) a GPU spent busy (needs
  /// record_timeline).
  [[nodiscard]] double busy_fraction(GpuId gpu, Time lo, Time hi) const;
};

}  // namespace hare::sim
