// Fairness metrics over simulation results.
//
// The heterogeneity-aware scheduling literature Hare builds on
// (Gandiva_fair, Themis, AlloX) evaluates fairness alongside efficiency.
// We report the standard quantities over per-job *slowdowns* — realized
// JCT divided by the job's ideal duration (its critical path at fastest
// speeds on an empty cluster): Jain's index (1 = perfectly equal
// slowdowns), and the max slowdown (worst-treated job).
#pragma once

#include <algorithm>
#include <vector>

#include "profiler/time_table.hpp"
#include "sim/metrics.hpp"
#include "workload/job.hpp"

namespace hare::sim {

/// Jain's fairness index: (Σx)² / (n·Σx²); 1/n..1, higher = fairer.
[[nodiscard]] inline double jains_index(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum /
         (static_cast<double>(values.size()) * sum_sq);
}

/// Per-job slowdown: JCT / (rounds × fastest round time). Always >= ~1.
[[nodiscard]] inline std::vector<double> job_slowdowns(
    const workload::JobSet& jobs, const profiler::TimeTable& times,
    const SimResult& result) {
  std::vector<double> slowdowns;
  slowdowns.reserve(jobs.job_count());
  for (const auto& job : jobs.jobs()) {
    Time fastest_round = kTimeInfinity;
    for (std::size_t g = 0; g < times.gpu_count(); ++g) {
      fastest_round = std::min(
          fastest_round, times.total(job.id, GpuId(static_cast<int>(g))));
    }
    const double ideal =
        static_cast<double>(job.rounds()) * fastest_round;
    const double jct =
        result.jobs[static_cast<std::size_t>(job.id.value())].jct();
    slowdowns.push_back(ideal > 0.0 ? jct / ideal : 1.0);
  }
  return slowdowns;
}

[[nodiscard]] inline double max_slowdown(const std::vector<double>& values) {
  double worst = 0.0;
  for (double v : values) worst = std::max(worst, v);
  return worst;
}

}  // namespace hare::sim
