// Execution plans.
//
// Every scheduler (Hare and all baselines) emits a `Schedule`: an ordered
// task sequence per GPU, optionally annotated with the planner's predicted
// start times. The simulator executes sequences in order under the real
// constraints (arrival, round barriers, non-preemption, switching cost),
// so a plan built from *predicted* times replays correctly under *actual*
// times: the dependency graph (per-GPU chains + round-precedence edges) is
// fixed by the sequences and was acyclic under the planner's timing, and
// acyclicity does not depend on durations.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workload/job.hpp"

namespace hare::sim {

struct Schedule {
  /// sequences[g] = ordered tasks GPU g runs (index = GpuId value).
  std::vector<std::vector<TaskId>> sequences;
  /// Planner's predicted start time per task (by TaskId value); empty when
  /// the planner does not predict (then validation skips timing checks).
  std::vector<Time> predicted_start;
  /// Planner's predicted objective (sum of weighted completion times), when
  /// available; 0 otherwise.
  double predicted_objective = 0.0;

  [[nodiscard]] std::size_t gpu_count() const { return sequences.size(); }
  [[nodiscard]] std::size_t task_count() const {
    std::size_t n = 0;
    for (const auto& s : sequences) n += s.size();
    return n;
  }
};

/// Structural validation: every task of `jobs` appears exactly once across
/// the sequences and the chain+precedence graph is acyclic (executable).
/// Throws hare::common::Error with a diagnostic on violation.
void validate_schedule(const Schedule& schedule, const workload::JobSet& jobs);

/// Plain-text plan serialization — the offline workflow's hand-off
/// artifact (§3: the scheduler sends task sequences to the executors).
/// Round-trips exactly; `load_schedule` validates against `jobs`.
void save_schedule(const Schedule& schedule, std::ostream& os);
[[nodiscard]] Schedule load_schedule(std::istream& is,
                                     const workload::JobSet& jobs);
void save_schedule_file(const Schedule& schedule, const std::string& path);
[[nodiscard]] Schedule load_schedule_file(const std::string& path,
                                          const workload::JobSet& jobs);

}  // namespace hare::sim
