#include "sim/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace hare::sim {

namespace {

char job_glyph(JobId job) {
  static constexpr char kGlyphs[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  constexpr std::size_t kCount = sizeof(kGlyphs) - 1;
  return kGlyphs[static_cast<std::size_t>(job.value()) % kCount];
}

}  // namespace

std::string render_gantt(const cluster::Cluster& cluster,
                         const workload::JobSet& jobs,
                         const SimResult& result,
                         const GanttOptions& options) {
  HARE_CHECK_MSG(options.width >= 10, "gantt needs at least 10 columns");
  const Time horizon = std::max(result.makespan, 1e-9);
  const double scale = static_cast<double>(options.width) / horizon;

  // Rasterize tasks into per-GPU rows.
  std::vector<std::string> rows(cluster.gpu_count(),
                                std::string(options.width, '.'));
  for (const auto& task : jobs.tasks()) {
    const TaskRecord& record =
        result.tasks[static_cast<std::size_t>(task.id.value())];
    auto& row = rows[static_cast<std::size_t>(record.gpu.value())];
    const auto begin = static_cast<std::size_t>(record.start * scale);
    auto end = static_cast<std::size_t>(record.compute_end * scale);
    end = std::min(end, options.width - 1);
    for (std::size_t c = begin; c <= end && c < options.width; ++c) {
      row[c] = job_glyph(task.job);
    }
  }

  // Label column width.
  std::size_t label_width = 0;
  std::vector<std::string> labels(cluster.gpu_count());
  for (const auto& gpu : cluster.gpus()) {
    std::ostringstream os;
    os << gpu.spec().name << " #" << gpu.id.value();
    labels[static_cast<std::size_t>(gpu.id.value())] = os.str();
    label_width = std::max(label_width, os.str().size());
  }

  std::ostringstream out;
  out << std::string(label_width, ' ') << " 0s" << std::string(options.width - 8, ' ')
      << static_cast<long long>(horizon) << "s\n";
  for (std::size_t g = 0; g < rows.size(); ++g) {
    out << labels[g] << std::string(label_width - labels[g].size(), ' ')
        << " |" << rows[g] << "|\n";
  }

  if (options.show_legend) {
    out << "legend:";
    const std::size_t shown = std::min<std::size_t>(jobs.job_count(), 12);
    for (std::size_t j = 0; j < shown; ++j) {
      const auto& job = jobs.job(JobId(static_cast<int>(j)));
      out << ' ' << job_glyph(job.id) << '='
          << (job.spec.name.empty()
                  ? std::string(workload::model_name(job.spec.model))
                  : job.spec.name);
    }
    if (jobs.job_count() > shown) out << " ...";
    out << '\n';
  }
  return out.str();
}

}  // namespace hare::sim
