#include "sim/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hare::sim {

NetworkModel::NetworkModel(const cluster::Cluster& cluster) {
  uplinks_.resize(cluster.machine_count());
  for (const auto& machine : cluster.machines()) {
    uplinks_[static_cast<std::size_t>(machine.id.value())].bytes_per_second =
        machine.network_gbps * 1e9 / 8.0;
  }
}

NetworkModel::TransferId NetworkModel::start_transfer(MachineId machine,
                                                      double bytes, Time now) {
  HARE_CHECK_MSG(
      machine.valid() &&
          static_cast<std::size_t>(machine.value()) < uplinks_.size(),
      "unknown machine " << machine);
  HARE_CHECK_MSG(bytes > 0.0, "transfer must carry bytes");
  Uplink& link = uplinks_[static_cast<std::size_t>(machine.value())];
  advance(link, now);
  const TransferId id = next_id_++;
  link.active.push_back(Transfer{id, bytes});
  return id;
}

Time NetworkModel::next_completion() const {
  Time earliest = kTimeInfinity;
  for (const auto& link : uplinks_) {
    earliest = std::min(earliest, link_next_completion(link));
  }
  return earliest;
}

std::vector<NetworkModel::TransferId> NetworkModel::complete_at(Time t) {
  std::vector<TransferId> completed;
  constexpr double kSlack = 1e-9;
  for (auto& link : uplinks_) {
    if (link.active.empty()) continue;
    if (link_next_completion(link) > t + kSlack) continue;
    advance(link, t);
    for (auto it = link.active.begin(); it != link.active.end();) {
      if (it->remaining_bytes <= kSlack * link.bytes_per_second) {
        completed.push_back(it->id);
        it = link.active.erase(it);
      } else {
        ++it;
      }
    }
  }
  return completed;
}

std::size_t NetworkModel::active_count() const {
  std::size_t n = 0;
  for (const auto& link : uplinks_) n += link.active.size();
  return n;
}

void NetworkModel::advance(Uplink& link, Time now) {
  if (now <= link.last_update) return;
  if (!link.active.empty()) {
    const double share =
        link.bytes_per_second / static_cast<double>(link.active.size());
    const double drained = share * (now - link.last_update);
    for (auto& transfer : link.active) {
      transfer.remaining_bytes = std::max(0.0, transfer.remaining_bytes - drained);
    }
  }
  link.last_update = now;
}

Time NetworkModel::link_next_completion(const Uplink& link) const {
  if (link.active.empty()) return kTimeInfinity;
  double min_remaining = link.active.front().remaining_bytes;
  for (const auto& transfer : link.active) {
    min_remaining = std::min(min_remaining, transfer.remaining_bytes);
  }
  const double share =
      link.bytes_per_second / static_cast<double>(link.active.size());
  return link.last_update + min_remaining / share;
}

}  // namespace hare::sim
