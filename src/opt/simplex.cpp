#include "opt/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hare::opt {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau. Columns: structural + slack/surplus + artificial,
/// plus the rhs column. One basis variable per row.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * (cols + 1), 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * (cols_ + 1) + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * (cols_ + 1) + c];
  }
  double& rhs(std::size_t r) { return at(r, cols_); }
  [[nodiscard]] double rhs(std::size_t r) const { return at(r, cols_); }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_value = at(pr, pc);
    const double inv = 1.0 / pivot_value;
    for (std::size_t c = 0; c <= cols_; ++c) at(pr, c) *= inv;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (std::abs(factor) < kEps) continue;
      for (std::size_t c = 0; c <= cols_; ++c) {
        at(r, c) -= factor * at(pr, c);
      }
      at(r, pc) = 0.0;
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

struct SimplexState {
  Tableau tableau;
  std::vector<std::size_t> basis;  // basis[r] = column basic in row r
  std::vector<double> reduced;     // reduced costs, size cols
  double objective = 0.0;
};

/// Compute reduced costs z_j - c_j for minimization given objective c over
/// all tableau columns.
void compute_reduced_costs(SimplexState& s, const std::vector<double>& c) {
  const std::size_t cols = s.tableau.cols();
  s.reduced.assign(cols, 0.0);
  s.objective = 0.0;
  for (std::size_t r = 0; r < s.tableau.rows(); ++r) {
    s.objective += c[s.basis[r]] * s.tableau.rhs(r);
  }
  for (std::size_t j = 0; j < cols; ++j) {
    double z = 0.0;
    for (std::size_t r = 0; r < s.tableau.rows(); ++r) {
      const double a = s.tableau.at(r, j);
      if (a != 0.0) z += c[s.basis[r]] * a;
    }
    s.reduced[j] = z - c[j];
  }
}

/// Run simplex iterations minimizing objective c. Returns status; updates
/// state in place. Reduced costs maintained incrementally via re-pricing.
LpStatus iterate(SimplexState& s, const std::vector<double>& c,
                 std::size_t max_iterations) {
  const std::size_t cols = s.tableau.cols();
  const std::size_t rows = s.tableau.rows();
  const std::size_t bland_threshold = max_iterations / 2;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    compute_reduced_costs(s, c);
    const bool bland = iter >= bland_threshold;

    // Entering column: most positive reduced cost (min problem), or the
    // lowest-index positive one under Bland's anti-cycling rule.
    std::size_t enter = cols;
    double best = kEps;
    for (std::size_t j = 0; j < cols; ++j) {
      if (s.reduced[j] > (bland ? kEps : best)) {
        enter = j;
        if (bland) break;
        best = s.reduced[j];
      }
    }
    if (enter == cols) return LpStatus::Optimal;

    // Leaving row: min ratio test.
    std::size_t leave = rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < rows; ++r) {
      const double a = s.tableau.at(r, enter);
      if (a > kEps) {
        const double ratio = s.tableau.rhs(r) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && leave < rows &&
             s.basis[r] < s.basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == rows) return LpStatus::Unbounded;

    s.tableau.pivot(leave, enter);
    s.basis[leave] = enter;
  }
  return LpStatus::IterationLimit;
}

}  // namespace

std::size_t LinearProgram::add_variable(double objective_coefficient) {
  objective_.push_back(objective_coefficient);
  return objective_.size() - 1;
}

void LinearProgram::add_constraint(
    const std::vector<std::pair<std::size_t, double>>& terms, Relation rel,
    double rhs) {
  for (const auto& [var, coeff] : terms) {
    HARE_CHECK_MSG(var < objective_.size(),
                   "constraint references unknown variable " << var);
    (void)coeff;
  }
  rows_.push_back(Row{terms, rel, rhs});
}

LpSolution LinearProgram::solve(std::size_t max_iterations) const {
  const std::size_t n = objective_.size();
  const std::size_t m = rows_.size();

  // Count auxiliary columns: slack for <=, surplus for >=, artificial for
  // >= and =. After sign normalization (rhs >= 0).
  std::size_t slack_count = 0;
  std::size_t artificial_count = 0;
  std::vector<Row> rows = rows_;
  for (auto& row : rows) {
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (auto& [var, coeff] : row.terms) coeff = -coeff;
      if (row.rel == Relation::LessEqual) {
        row.rel = Relation::GreaterEqual;
      } else if (row.rel == Relation::GreaterEqual) {
        row.rel = Relation::LessEqual;
      }
    }
    switch (row.rel) {
      case Relation::LessEqual: ++slack_count; break;
      case Relation::GreaterEqual:
        ++slack_count;
        ++artificial_count;
        break;
      case Relation::Equal: ++artificial_count; break;
    }
  }

  const std::size_t total = n + slack_count + artificial_count;
  SimplexState state{Tableau(m, total), {}, {}, 0.0};
  state.basis.assign(m, 0);

  std::size_t next_slack = n;
  std::size_t next_artificial = n + slack_count;
  std::vector<bool> is_artificial(total, false);

  for (std::size_t r = 0; r < m; ++r) {
    const Row& row = rows[r];
    for (const auto& [var, coeff] : row.terms) {
      state.tableau.at(r, var) += coeff;
    }
    state.tableau.rhs(r) = row.rhs;
    switch (row.rel) {
      case Relation::LessEqual:
        state.tableau.at(r, next_slack) = 1.0;
        state.basis[r] = next_slack++;
        break;
      case Relation::GreaterEqual:
        state.tableau.at(r, next_slack) = -1.0;
        ++next_slack;
        state.tableau.at(r, next_artificial) = 1.0;
        is_artificial[next_artificial] = true;
        state.basis[r] = next_artificial++;
        break;
      case Relation::Equal:
        state.tableau.at(r, next_artificial) = 1.0;
        is_artificial[next_artificial] = true;
        state.basis[r] = next_artificial++;
        break;
    }
  }

  LpSolution solution;

  // Phase 1: drive artificials to zero.
  if (artificial_count > 0) {
    std::vector<double> phase1(total, 0.0);
    for (std::size_t j = 0; j < total; ++j) {
      if (is_artificial[j]) phase1[j] = 1.0;
    }
    const LpStatus status = iterate(state, phase1, max_iterations);
    if (status == LpStatus::IterationLimit) {
      solution.status = status;
      return solution;
    }
    compute_reduced_costs(state, phase1);
    if (state.objective > 1e-6) {
      solution.status = LpStatus::Infeasible;
      return solution;
    }
    // Pivot any artificial still (degenerately) basic out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[state.basis[r]]) continue;
      std::size_t enter = total;
      for (std::size_t j = 0; j < n + slack_count; ++j) {
        if (std::abs(state.tableau.at(r, j)) > kEps) {
          enter = j;
          break;
        }
      }
      if (enter < total) {
        state.tableau.pivot(r, enter);
        state.basis[r] = enter;
      }
      // Otherwise the row is all-zero (redundant); the artificial stays at
      // value 0 and never re-enters because phase 2 ignores it.
    }
  }

  // Phase 2: original objective; artificials are fenced out with +inf-like
  // cost so they never re-enter.
  std::vector<double> phase2(total, 0.0);
  for (std::size_t j = 0; j < n; ++j) phase2[j] = objective_[j];
  constexpr double kBigM = 1e12;
  for (std::size_t j = 0; j < total; ++j) {
    if (is_artificial[j]) phase2[j] = kBigM;
  }
  const LpStatus status = iterate(state, phase2, max_iterations);
  solution.status = status;
  if (status != LpStatus::Optimal) return solution;

  solution.values.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (state.basis[r] < n) {
      solution.values[state.basis[r]] = state.tableau.rhs(r);
    }
  }
  solution.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    solution.objective += objective_[j] * solution.values[j];
  }
  return solution;
}

}  // namespace hare::opt
