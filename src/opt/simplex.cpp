#include "opt/simplex.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "opt/revised_simplex.hpp"

namespace hare::opt {

namespace {

constexpr double kEps = 1e-9;
/// Consecutive non-improving iterations before Bland's rule engages.
constexpr std::size_t kStallThreshold = 64;
/// Initial spare tableau columns reserved for cut logicals.
constexpr std::size_t kColumnHeadroom = 32;

/// Dense simplex tableau. Columns: structural + slack/surplus + artificial.
/// One basis variable per row. The rhs lives in its own vector and the data
/// block is laid out with spare column capacity, so appending a cut row /
/// logical column is amortized O(touched cells) rather than a full-matrix
/// copy per cut.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        cap_cols_(cols + kColumnHeadroom),
        data_(rows * cap_cols_, 0.0),
        rhs_(rows, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cap_cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cap_cols_ + c];
  }
  double& rhs(std::size_t r) { return rhs_[r]; }
  [[nodiscard]] double rhs(std::size_t r) const { return rhs_[r]; }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Grow by `extra_rows` zero rows and `extra_cols` zero columns. Row
  /// growth is a resize; column growth consumes reserved capacity and only
  /// repacks (geometrically) when the headroom is exhausted.
  void expand(std::size_t extra_rows, std::size_t extra_cols) {
    if (cols_ + extra_cols > cap_cols_) {
      const std::size_t new_cap =
          std::max(cols_ + extra_cols, cap_cols_ * 2);
      std::vector<double> grown(rows_ * new_cap, 0.0);
      for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
          grown[r * new_cap + c] = data_[r * cap_cols_ + c];
        }
      }
      cap_cols_ = new_cap;
      data_ = std::move(grown);
    }
    cols_ += extra_cols;
    rows_ += extra_rows;
    data_.resize(rows_ * cap_cols_, 0.0);
    rhs_.resize(rows_, 0.0);
  }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_value = at(pr, pc);
    const double inv = 1.0 / pivot_value;
    for (std::size_t c = 0; c < cols_; ++c) at(pr, c) *= inv;
    rhs_[pr] *= inv;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (std::abs(factor) < kEps) continue;
      for (std::size_t c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pr, c);
      }
      rhs_[r] -= factor * rhs_[pr];
      at(r, pc) = 0.0;
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::size_t cap_cols_;
  std::vector<double> data_;
  std::vector<double> rhs_;
};

struct SimplexState {
  Tableau tableau;
  std::vector<std::size_t> basis;  // basis[r] = column basic in row r
  std::vector<double> reduced;     // reduced costs, size cols
  double objective = 0.0;
};

/// Compute reduced costs z_j - c_j for minimization given objective c over
/// all tableau columns.
void compute_reduced_costs(SimplexState& s, const std::vector<double>& c) {
  const std::size_t cols = s.tableau.cols();
  s.reduced.assign(cols, 0.0);
  s.objective = 0.0;
  for (std::size_t r = 0; r < s.tableau.rows(); ++r) {
    s.objective += c[s.basis[r]] * s.tableau.rhs(r);
  }
  for (std::size_t j = 0; j < cols; ++j) {
    double z = 0.0;
    for (std::size_t r = 0; r < s.tableau.rows(); ++r) {
      const double a = s.tableau.at(r, j);
      if (a != 0.0) z += c[s.basis[r]] * a;
    }
    s.reduced[j] = z - c[j];
  }
}

/// Run primal simplex iterations minimizing objective c. Returns status;
/// updates state in place. `pivots`, when given, accumulates pivot counts.
/// Columns flagged in `banned` (phase-2 artificials) never enter the basis.
/// Bland's anti-cycling rule engages after the objective stalls for
/// kStallThreshold consecutive iterations and disengages on improvement.
LpStatus iterate(SimplexState& s, const std::vector<double>& c,
                 std::size_t max_iterations, std::size_t* pivots = nullptr,
                 const std::vector<char>* banned = nullptr) {
  const std::size_t cols = s.tableau.cols();
  const std::size_t rows = s.tableau.rows();
  double prev_objective = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    compute_reduced_costs(s, c);
    if (s.objective < prev_objective - kEps) {
      prev_objective = s.objective;
      stall = 0;
    } else {
      ++stall;
    }
    const bool bland = stall >= kStallThreshold;

    // Entering column: most positive reduced cost (min problem), or the
    // lowest-index positive one under Bland's anti-cycling rule.
    std::size_t enter = cols;
    double best = kEps;
    for (std::size_t j = 0; j < cols; ++j) {
      if (banned && (*banned)[j]) continue;
      if (s.reduced[j] > (bland ? kEps : best)) {
        enter = j;
        if (bland) break;
        best = s.reduced[j];
      }
    }
    if (enter == cols) return LpStatus::Optimal;

    // Leaving row: min ratio test.
    std::size_t leave = rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < rows; ++r) {
      const double a = s.tableau.at(r, enter);
      if (a > kEps) {
        const double ratio = s.tableau.rhs(r) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && leave < rows &&
             s.basis[r] < s.basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == rows) return LpStatus::Unbounded;

    s.tableau.pivot(leave, enter);
    s.basis[leave] = enter;
    if (pivots) ++*pivots;
  }
  return LpStatus::IterationLimit;
}

/// Dual simplex: starting from a dual-feasible basis (reduced costs <= 0)
/// with negative right-hand sides (from appended cut rows), pivot until the
/// primal is feasible again. Returns Optimal when feasible, Infeasible when
/// a fully non-negative row has a negative rhs (the cut system is empty).
LpStatus dual_iterate(SimplexState& s, const std::vector<double>& c,
                      std::size_t max_iterations, std::size_t* pivots,
                      const std::vector<char>* banned = nullptr) {
  const std::size_t cols = s.tableau.cols();
  const std::size_t rows = s.tableau.rows();
  double prev_infeasibility = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    double infeasibility = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      if (s.tableau.rhs(r) < 0.0) infeasibility -= s.tableau.rhs(r);
    }
    if (infeasibility < prev_infeasibility - kEps) {
      prev_infeasibility = infeasibility;
      stall = 0;
    } else {
      ++stall;
    }
    const bool bland = stall >= kStallThreshold;

    // Leaving row: most negative rhs (lowest-index negative under Bland).
    std::size_t leave = rows;
    double most_negative = -kEps;
    for (std::size_t r = 0; r < rows; ++r) {
      if (s.tableau.rhs(r) < most_negative) {
        most_negative = s.tableau.rhs(r);
        leave = r;
        if (bland) break;
      }
    }
    if (leave == rows) return LpStatus::Optimal;  // primal feasible

    compute_reduced_costs(s, c);

    // Entering column: dual ratio test over negative entries of the leaving
    // row — minimize reduced[j] / a_rj (>= 0 since both are <= 0), ties to
    // the lowest column index (Bland-style, guards cycling).
    std::size_t enter = cols;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < cols; ++j) {
      if (banned && (*banned)[j]) continue;
      const double a = s.tableau.at(leave, j);
      if (a < -kEps) {
        const double ratio = s.reduced[j] / a;
        if (ratio < best_ratio - kEps) {
          best_ratio = ratio;
          enter = j;
        }
      }
    }
    if (enter == cols) return LpStatus::Infeasible;

    s.tableau.pivot(leave, enter);
    s.basis[leave] = enter;
    if (pivots) ++*pivots;
  }
  return LpStatus::IterationLimit;
}

}  // namespace

LpBackend resolve_lp_backend(LpBackend requested) {
  if (requested != LpBackend::Auto) return requested;
  if (const char* env = std::getenv("HARE_LP_BACKEND")) {
    std::string value(env);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (value == "dense") return LpBackend::Dense;
    if (value == "sparse") return LpBackend::Sparse;
  }
  return LpBackend::Sparse;
}

const char* lp_backend_name(LpBackend backend) {
  switch (backend) {
    case LpBackend::Auto: return "auto";
    case LpBackend::Dense: return "dense";
    case LpBackend::Sparse: return "sparse";
  }
  return "unknown";
}

SparseMode resolve_sparse_mode(SparseMode requested) {
  if (requested != SparseMode::Auto) return requested;
  if (const char* env = std::getenv("HARE_LP_SPARSE_MODE")) {
    std::string value(env);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (value == "classic") return SparseMode::Classic;
    if (value == "hyper") return SparseMode::Hyper;
  }
  return SparseMode::Auto;  // solver decides via its width heuristic
}

const char* sparse_mode_name(SparseMode mode) {
  switch (mode) {
    case SparseMode::Auto: return "auto";
    case SparseMode::Classic: return "classic";
    case SparseMode::Hyper: return "hyper";
  }
  return "unknown";
}

std::size_t LinearProgram::add_variable(double objective_coefficient) {
  objective_.push_back(objective_coefficient);
  lower_.push_back(0.0);
  upper_.push_back(kInfinity);
  return objective_.size() - 1;
}

void LinearProgram::set_objective(std::size_t var, double coefficient) {
  HARE_CHECK_MSG(var < objective_.size(),
                 "objective references unknown variable " << var);
  objective_[var] = coefficient;
}

void LinearProgram::set_bounds(std::size_t var, double lower, double upper) {
  HARE_CHECK_MSG(var < objective_.size(),
                 "bounds reference unknown variable " << var);
  HARE_CHECK_MSG(std::isfinite(lower),
                 "lower bound must be finite for variable " << var);
  HARE_CHECK_MSG(lower <= upper, "empty bound interval for variable " << var);
  lower_[var] = lower;
  upper_[var] = upper;
}

void LinearProgram::add_constraint(
    const std::vector<std::pair<std::size_t, double>>& terms, Relation rel,
    double rhs) {
  for (const auto& [var, coeff] : terms) {
    HARE_CHECK_MSG(var < objective_.size(),
                   "constraint references unknown variable " << var);
    (void)coeff;
  }
  nonzeros_ += terms.size();
  rows_.push_back(Row{terms, rel, rhs});
}

struct IncrementalLpSolver::Impl {
  LinearProgram lp;  ///< full program including appended cuts
  bool warm_start = true;
  LpBackend backend = LpBackend::Sparse;
  SparseMode sparse_mode = SparseMode::Auto;

  // --- Sparse backend state -----------------------------------------------
  std::unique_ptr<RevisedSimplex> sparse;

  // --- Dense backend state (retained standard form, warm path) ------------
  SimplexState state{Tableau(0, 0), {}, {}, 0.0};
  std::vector<char> artificial;  ///< per-column artificial flag
  std::vector<double> phase2;    ///< phase-2 costs (artificials at 0, banned)
  std::size_t structural = 0;    ///< count of original variables
  bool has_basis = false;        ///< a previous solve retained its basis
  bool basis_optimal = false;
  bool dirty = false;  ///< rows appended since the basis was factorized

  LpIterationStats stats;
  bool last_warm = false;

  LpSolution solve(std::size_t max_iterations);
  LpSolution sparse_solve(std::size_t max_iterations);
  LpSolution cold_solve(std::size_t max_iterations);
  LpSolution warm_resolve(std::size_t max_iterations);
  LpSolution extract() const;
  void append_cut_row(const std::vector<std::pair<std::size_t, double>>& terms,
                      double rhs);
  [[nodiscard]] double shifted_rhs(
      const std::vector<std::pair<std::size_t, double>>& terms,
      double rhs) const;
};

/// Lower bounds are handled by shifting (x = l + x'): every rhs drops the
/// bound contribution of its terms.
double IncrementalLpSolver::Impl::shifted_rhs(
    const std::vector<std::pair<std::size_t, double>>& terms,
    double rhs) const {
  for (const auto& [var, coeff] : terms) rhs -= coeff * lp.lower_[var];
  return rhs;
}

LpSolution IncrementalLpSolver::Impl::extract() const {
  LpSolution solution;
  solution.status = LpStatus::Optimal;
  solution.values.assign(structural, 0.0);
  for (std::size_t r = 0; r < state.tableau.rows(); ++r) {
    if (state.basis[r] < structural) {
      solution.values[state.basis[r]] = state.tableau.rhs(r);
    }
  }
  solution.objective = 0.0;
  for (std::size_t j = 0; j < structural; ++j) {
    solution.values[j] += lp.lower_[j];  // undo the bound shift
    solution.objective += lp.objective_[j] * solution.values[j];
  }
  return solution;
}

LpSolution IncrementalLpSolver::Impl::cold_solve(std::size_t max_iterations) {
  const std::size_t n = lp.objective_.size();
  structural = n;
  has_basis = false;
  basis_optimal = false;
  dirty = false;

  // Standard-form rows: the stated rows with lower bounds shifted out, plus
  // one internal row x' <= u - l per finite upper bound.
  std::vector<LinearProgram::Row> rows = lp.rows_;
  for (auto& row : rows) row.rhs = shifted_rhs(row.terms, row.rhs);
  for (std::size_t j = 0; j < n; ++j) {
    if (std::isfinite(lp.upper_[j])) {
      rows.push_back(LinearProgram::Row{
          {{j, 1.0}}, Relation::LessEqual, lp.upper_[j] - lp.lower_[j]});
    }
  }
  const std::size_t m = rows.size();

  // Count auxiliary columns: slack for <=, surplus for >=, artificial for
  // >= and =. After sign normalization (rhs >= 0).
  std::size_t slack_count = 0;
  std::size_t artificial_count = 0;
  for (auto& row : rows) {
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (auto& [var, coeff] : row.terms) coeff = -coeff;
      if (row.rel == Relation::LessEqual) {
        row.rel = Relation::GreaterEqual;
      } else if (row.rel == Relation::GreaterEqual) {
        row.rel = Relation::LessEqual;
      }
    }
    switch (row.rel) {
      case Relation::LessEqual: ++slack_count; break;
      case Relation::GreaterEqual:
        ++slack_count;
        ++artificial_count;
        break;
      case Relation::Equal: ++artificial_count; break;
    }
  }

  const std::size_t total = n + slack_count + artificial_count;
  state = SimplexState{Tableau(m, total), {}, {}, 0.0};
  state.basis.assign(m, 0);
  artificial.assign(total, 0);

  std::size_t next_slack = n;
  std::size_t next_artificial = n + slack_count;

  for (std::size_t r = 0; r < m; ++r) {
    const LinearProgram::Row& row = rows[r];
    for (const auto& [var, coeff] : row.terms) {
      state.tableau.at(r, var) += coeff;
    }
    state.tableau.rhs(r) = row.rhs;
    switch (row.rel) {
      case Relation::LessEqual:
        state.tableau.at(r, next_slack) = 1.0;
        state.basis[r] = next_slack++;
        break;
      case Relation::GreaterEqual:
        state.tableau.at(r, next_slack) = -1.0;
        ++next_slack;
        state.tableau.at(r, next_artificial) = 1.0;
        artificial[next_artificial] = 1;
        state.basis[r] = next_artificial++;
        break;
      case Relation::Equal:
        state.tableau.at(r, next_artificial) = 1.0;
        artificial[next_artificial] = 1;
        state.basis[r] = next_artificial++;
        break;
    }
  }

  LpSolution solution;

  // Phase 1: pure infeasibility objective — drive artificials to zero.
  if (artificial_count > 0) {
    std::vector<double> phase1(total, 0.0);
    for (std::size_t j = 0; j < total; ++j) {
      if (artificial[j]) phase1[j] = 1.0;
    }
    const LpStatus status =
        iterate(state, phase1, max_iterations, &stats.phase1);
    if (status == LpStatus::IterationLimit) {
      solution.status = status;
      return solution;
    }
    compute_reduced_costs(state, phase1);
    if (state.objective > 1e-6) {
      solution.status = LpStatus::Infeasible;
      return solution;
    }
    // Pivot any artificial still (degenerately) basic out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (!artificial[state.basis[r]]) continue;
      std::size_t enter = total;
      for (std::size_t j = 0; j < n + slack_count; ++j) {
        if (std::abs(state.tableau.at(r, j)) > kEps) {
          enter = j;
          break;
        }
      }
      if (enter < total) {
        state.tableau.pivot(r, enter);
        state.basis[r] = enter;
      }
      // Otherwise the row is all-zero (redundant); the artificial stays at
      // value 0 and never re-enters because phase 2 bans it.
    }
  }

  // Phase 2: original objective. Artificials keep cost 0 but are banned
  // from entering — no Big-M fencing needed.
  phase2.assign(total, 0.0);
  for (std::size_t j = 0; j < n; ++j) phase2[j] = lp.objective_[j];
  const LpStatus status =
      iterate(state, phase2, max_iterations, &stats.phase2, &artificial);
  if (status != LpStatus::Optimal) {
    solution.status = status;
    return solution;
  }

  has_basis = true;
  basis_optimal = true;
  return extract();
}

void IncrementalLpSolver::Impl::append_cut_row(
    const std::vector<std::pair<std::size_t, double>>& terms, double rhs) {
  // Append `terms >= rhs` in standard form: -terms + surplus = -rhs with the
  // new surplus basic, then eliminate the current basic variables so the row
  // is expressed over the non-basic columns. The resulting rhs is negative
  // exactly when the cut is violated at the retained vertex; dual simplex
  // repairs it at the next solve().
  const std::size_t old_cols = state.tableau.cols();
  const std::size_t old_rows = state.tableau.rows();
  state.tableau.expand(1, 1);
  const std::size_t surplus = old_cols;  // new column index
  const std::size_t row = old_rows;      // new row index
  artificial.push_back(0);
  phase2.push_back(0.0);

  for (const auto& [var, coeff] : terms) {
    HARE_CHECK_MSG(var < structural,
                   "cut references unknown variable " << var);
    state.tableau.at(row, var) -= coeff;
  }
  state.tableau.at(row, surplus) = 1.0;
  state.tableau.rhs(row) = -shifted_rhs(terms, rhs);

  // Gaussian elimination of basic columns from the new row.
  for (std::size_t r = 0; r < old_rows; ++r) {
    const double factor = state.tableau.at(row, state.basis[r]);
    if (std::abs(factor) < kEps) continue;
    for (std::size_t c = 0; c < state.tableau.cols(); ++c) {
      const double a = state.tableau.at(r, c);
      if (a != 0.0) state.tableau.at(row, c) -= factor * a;
    }
    state.tableau.rhs(row) -= factor * state.tableau.rhs(r);
    state.tableau.at(row, state.basis[r]) = 0.0;
  }
  state.basis.push_back(surplus);
  dirty = true;
}

LpSolution IncrementalLpSolver::Impl::warm_resolve(
    std::size_t max_iterations) {
  LpStatus status =
      dual_iterate(state, phase2, max_iterations, &stats.dual, &artificial);
  if (status == LpStatus::Optimal) {
    // Dual feasibility is maintained by the ratio test, so this usually
    // terminates immediately; it cleans up numerical drift when not.
    status =
        iterate(state, phase2, max_iterations, &stats.phase2, &artificial);
  }
  if (status != LpStatus::Optimal) {
    // Degenerate dual stall or drift: fall back to a cold factorization of
    // the full program (all cuts are recorded in `lp`).
    stats = {};
    last_warm = false;
    return cold_solve(max_iterations);
  }
  dirty = false;
  basis_optimal = true;
  return extract();
}

LpSolution IncrementalLpSolver::Impl::sparse_solve(
    std::size_t max_iterations) {
  if (warm_start && sparse && sparse->has_optimal_basis()) {
    last_warm = true;
    LpSolution solution = sparse->resolve(max_iterations, &stats);
    if (solution.status != LpStatus::IterationLimit) return solution;
    // Numerical stall on the warm path: rebuild and solve cold.
    stats = {};
  }
  last_warm = false;
  sparse = std::make_unique<RevisedSimplex>(lp);
  sparse->set_sparse_mode(sparse_mode);
  return sparse->solve(max_iterations, &stats);
}

LpSolution IncrementalLpSolver::Impl::solve(std::size_t max_iterations) {
  stats = {};
  if (backend == LpBackend::Sparse) return sparse_solve(max_iterations);
  if (warm_start && has_basis) {
    last_warm = true;
    basis_optimal = false;
    return warm_resolve(max_iterations);
  }
  last_warm = false;
  return cold_solve(max_iterations);
}

IncrementalLpSolver::IncrementalLpSolver(const LinearProgram& lp,
                                         bool warm_start, LpBackend backend)
    : impl_(std::make_unique<Impl>()) {
  impl_->lp = lp;
  impl_->warm_start = warm_start;
  impl_->backend = resolve_lp_backend(backend);
}

IncrementalLpSolver::~IncrementalLpSolver() = default;
IncrementalLpSolver::IncrementalLpSolver(IncrementalLpSolver&&) noexcept =
    default;
IncrementalLpSolver& IncrementalLpSolver::operator=(
    IncrementalLpSolver&&) noexcept = default;

void IncrementalLpSolver::add_ge_constraint(
    const std::vector<std::pair<std::size_t, double>>& terms, double rhs) {
  impl_->lp.add_constraint(terms, Relation::GreaterEqual, rhs);
  if (!impl_->warm_start) return;
  if (impl_->backend == LpBackend::Sparse) {
    if (impl_->sparse && impl_->sparse->has_optimal_basis()) {
      impl_->sparse->add_ge_row(terms, rhs);
    }
    return;
  }
  if (impl_->has_basis) {
    HARE_CHECK_MSG(impl_->basis_optimal || impl_->dirty,
                   "cannot warm-append a cut to a non-optimal basis");
    impl_->append_cut_row(terms, rhs);
  }
}

std::size_t IncrementalLpSolver::add_variable(double objective_coefficient,
                                              double lower, double upper) {
  const std::size_t var = impl_->lp.add_variable(objective_coefficient);
  impl_->lp.set_bounds(var, lower, upper);
  if (impl_->backend == LpBackend::Sparse) {
    if (impl_->warm_start && impl_->sparse &&
        impl_->sparse->has_optimal_basis()) {
      impl_->sparse->add_variable(objective_coefficient, lower, upper);
    }
    // Otherwise the next sparse_solve() rebuilds from `lp`, which already
    // records the variable.
  } else {
    // The dense warm path cannot grow the structural block of its retained
    // standard form; fall back to a cold factorization at the next solve().
    impl_->has_basis = false;
    impl_->basis_optimal = false;
    impl_->dirty = false;
  }
  return var;
}

LpSolution IncrementalLpSolver::solve(std::size_t max_iterations) {
  return impl_->solve(max_iterations);
}

const LpIterationStats& IncrementalLpSolver::last_stats() const {
  return impl_->stats;
}

bool IncrementalLpSolver::last_solve_was_warm() const {
  return impl_->last_warm;
}

LpBackend IncrementalLpSolver::backend() const { return impl_->backend; }

void IncrementalLpSolver::set_sparse_mode(SparseMode mode) {
  impl_->sparse_mode = mode;
}

LpSolution LinearProgram::solve(std::size_t max_iterations,
                                LpIterationStats* stats,
                                LpBackend backend) const {
  const LpBackend resolved = resolve_lp_backend(backend);
  if (resolved == LpBackend::Sparse) {
    RevisedSimplex solver(*this);
    LpIterationStats local;
    LpSolution solution = solver.solve(max_iterations, &local);
    if (stats) *stats = local;
    return solution;
  }
  IncrementalLpSolver solver(*this, /*warm_start=*/false, LpBackend::Dense);
  LpSolution solution = solver.solve(max_iterations);
  if (stats) *stats = solver.last_stats();
  return solution;
}

}  // namespace hare::opt
