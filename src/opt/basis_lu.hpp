// Sparse LU factorization of a simplex basis with product-form updates.
//
// The revised simplex never forms B⁻¹: it keeps B = LU (sparse columns,
// row partial pivoting) plus a short chain of eta matrices recording the
// basis exchanges since the last refactorization:
//
//   B_k = B_0 · E_1 · ... · E_k,   E_i = I with one column replaced by the
//                                        entering column's spike B⁻¹a_q
//
// FTRAN (B⁻¹v) solves through LU then applies the eta chain forward;
// BTRAN (B⁻ᵀv) applies the chain in reverse then solves LUᵀ. The chain is
// folded back into a fresh LU every `kRefactorInterval` pivots or when an
// update pivot is too small to be stable — the classic cadence that keeps
// both FTRAN cost and numerical drift bounded.
//
// Index spaces: FTRAN maps a row-indexed vector to a basis-position-indexed
// one; BTRAN maps positions back to rows. Eta updates act purely on the
// position space.
//
// Hyper-sparse mode (set_hyper): when the right-hand side has few nonzeros
// — a single BTRAN(e_r) pricing row, an entering column's FTRAN — the
// triangular solves only fire the elimination steps reachable from the
// nonzero set through the L/U dependency graph (Gilbert–Peierls style),
// driven by an index heap so steps still execute in the exact order the
// dense sweeps use. Fired steps perform the identical arithmetic, so the
// results match the dense sweeps bit for bit (modulo the sign of exact
// zeros); callers get the nonzero pattern back and can skip dense scans of
// their own. set_markowitz switches the refactorization's pivot choice
// from pure partial pivoting to a Markowitz-style rule (stability-eligible
// row of minimum static row count) that bounds fill-in on the wide LPs the
// policy and serve layers generate.
#pragma once

#include <cstddef>
#include <vector>

#include "opt/sparse_matrix.hpp"

namespace hare::opt {

class BasisLU {
 public:
  /// Pivots recorded since the last factorize(); refactorize at this depth.
  static constexpr std::size_t kRefactorInterval = 64;

  /// Factorize the basis given by `basis` (variable index per position)
  /// against the column store `A`. Returns false when the basis matrix is
  /// numerically singular. Clears the eta chain.
  [[nodiscard]] bool factorize(const SparseMatrix& A,
                               const std::vector<int>& basis);

  /// v (dense, indexed by row) := nothing; out (indexed by basis position)
  /// := B⁻¹ v.
  void ftran(const std::vector<double>& v, std::vector<double>& out) const;

  /// v (dense, indexed by basis position); out (indexed by row) := B⁻ᵀ v.
  void btran(const std::vector<double>& v, std::vector<double>& out) const;

  /// Hyper-sparse FTRAN. `v` is dense with nonzero rows listed in `v_rows`;
  /// `out` must be all-zero on entry and receives B⁻¹v with its nonzero
  /// positions appended to `out_pos` (sorted ascending). Falls back to the
  /// dense sweep (and a full position list) when the right-hand side is too
  /// dense for graph-driven firing to pay off, or when the current
  /// factorization predates set_hyper(true).
  void ftran_sparse(const std::vector<double>& v,
                    const std::vector<int>& v_rows, std::vector<double>& out,
                    std::vector<int>& out_pos) const;

  /// Hyper-sparse BTRAN: position-space `v` with nonzeros `v_pos`, row-space
  /// result with nonzero rows in `out_rows`. Same contract as ftran_sparse.
  void btran_sparse(const std::vector<double>& v,
                    const std::vector<int>& v_pos, std::vector<double>& out,
                    std::vector<int>& out_rows) const;

  /// Record the exchange "position `p` now holds the column whose spike
  /// B⁻¹a_q is `spike`". Returns false when |spike[p]| is too small for a
  /// stable product-form update (caller must refactorize instead).
  [[nodiscard]] bool update(int p, const std::vector<double>& spike);

  /// update() reading only the listed spike positions (sorted ascending);
  /// produces the same eta as the dense scan when the list covers every
  /// nonzero.
  [[nodiscard]] bool update_sparse(int p, const std::vector<double>& spike,
                                   const std::vector<int>& spike_pos);

  /// Build the transpose/reader structures the next factorize() needs for
  /// graph-driven solves.
  void set_hyper(bool on) { hyper_ = on; }

  /// Bound fill-in with Markowitz-style pivot selection from the next
  /// factorize() on.
  void set_markowitz(bool on) { markowitz_ = on; }

  [[nodiscard]] bool hyper_ready() const { return hyper_built_; }

  [[nodiscard]] std::size_t eta_count() const { return etas_.size(); }
  [[nodiscard]] bool needs_refactor() const {
    return etas_.size() >= kRefactorInterval;
  }
  [[nodiscard]] int dimension() const { return m_; }

 private:
  struct Eta {
    int position = 0;
    double pivot = 0.0;
    std::vector<SparseEntry> other;  ///< spike entries off the pivot position
  };

  int m_ = 0;
  std::vector<int> prow_;             ///< pivot row of elimination step k
  std::vector<double> udiag_;         ///< U diagonal per elimination step
  std::vector<std::vector<SparseEntry>> lcol_;  ///< L entries (row, value)
  std::vector<std::vector<SparseEntry>> ucol_;  ///< U entries (step j<k, value)
  std::vector<Eta> etas_;
  mutable std::vector<double> work_;  ///< dense scratch, row-indexed

  bool hyper_ = false;
  bool markowitz_ = false;
  bool hyper_built_ = false;
  std::vector<int> row_step_;  ///< inverse of prow_: row -> elimination step
  /// Steps k>j whose ucol_[k] references step j (BTRAN Uᵀ propagation).
  std::vector<std::vector<int>> u_readers_;
  /// Steps k whose lcol_[k] reads row r (BTRAN Lᵀ propagation); all k are
  /// earlier than row_step_[r].
  std::vector<std::vector<int>> l_readers_;

  // Hyper-solve scratch: `swork_` (rows) and `pwork_` (positions) are kept
  // all-zero between calls; the mark/touched pairs record what to clear.
  mutable std::vector<double> swork_;
  mutable std::vector<double> pwork_;
  mutable std::vector<char> row_mark_;
  mutable std::vector<char> step_mark_;
  mutable std::vector<char> step_mark2_;
  mutable std::vector<int> touched_rows_;
  mutable std::vector<int> touched_steps_;
  mutable std::vector<int> touched_steps2_;
  mutable std::vector<int> heap_;

  void build_hyper_structures();
};

}  // namespace hare::opt
