// Sparse LU factorization of a simplex basis with product-form updates.
//
// The revised simplex never forms B⁻¹: it keeps B = LU (sparse columns,
// row partial pivoting) plus a short chain of eta matrices recording the
// basis exchanges since the last refactorization:
//
//   B_k = B_0 · E_1 · ... · E_k,   E_i = I with one column replaced by the
//                                        entering column's spike B⁻¹a_q
//
// FTRAN (B⁻¹v) solves through LU then applies the eta chain forward;
// BTRAN (B⁻ᵀv) applies the chain in reverse then solves LUᵀ. The chain is
// folded back into a fresh LU every `kRefactorInterval` pivots or when an
// update pivot is too small to be stable — the classic cadence that keeps
// both FTRAN cost and numerical drift bounded.
//
// Index spaces: FTRAN maps a row-indexed vector to a basis-position-indexed
// one; BTRAN maps positions back to rows. Eta updates act purely on the
// position space.
#pragma once

#include <cstddef>
#include <vector>

#include "opt/sparse_matrix.hpp"

namespace hare::opt {

class BasisLU {
 public:
  /// Pivots recorded since the last factorize(); refactorize at this depth.
  static constexpr std::size_t kRefactorInterval = 64;

  /// Factorize the basis given by `basis` (variable index per position)
  /// against the column store `A`. Returns false when the basis matrix is
  /// numerically singular. Clears the eta chain.
  [[nodiscard]] bool factorize(const SparseMatrix& A,
                               const std::vector<int>& basis);

  /// v (dense, indexed by row) := nothing; out (indexed by basis position)
  /// := B⁻¹ v.
  void ftran(const std::vector<double>& v, std::vector<double>& out) const;

  /// v (dense, indexed by basis position); out (indexed by row) := B⁻ᵀ v.
  void btran(const std::vector<double>& v, std::vector<double>& out) const;

  /// Record the exchange "position `p` now holds the column whose spike
  /// B⁻¹a_q is `spike`". Returns false when |spike[p]| is too small for a
  /// stable product-form update (caller must refactorize instead).
  [[nodiscard]] bool update(int p, const std::vector<double>& spike);

  [[nodiscard]] std::size_t eta_count() const { return etas_.size(); }
  [[nodiscard]] bool needs_refactor() const {
    return etas_.size() >= kRefactorInterval;
  }
  [[nodiscard]] int dimension() const { return m_; }

 private:
  struct Eta {
    int position = 0;
    double pivot = 0.0;
    std::vector<SparseEntry> other;  ///< spike entries off the pivot position
  };

  int m_ = 0;
  std::vector<int> prow_;             ///< pivot row of elimination step k
  std::vector<double> udiag_;         ///< U diagonal per elimination step
  std::vector<std::vector<SparseEntry>> lcol_;  ///< L entries (row, value)
  std::vector<std::vector<SparseEntry>> ucol_;  ///< U entries (step j<k, value)
  std::vector<Eta> etas_;
  mutable std::vector<double> work_;  ///< dense scratch, row-indexed
};

}  // namespace hare::opt
