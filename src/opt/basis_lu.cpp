#include "opt/basis_lu.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hare::opt {
namespace {

constexpr double kSingularTol = 1e-11;
constexpr double kUpdatePivotTol = 1e-8;
constexpr double kDropTol = 1e-12;

}  // namespace

bool BasisLU::factorize(const SparseMatrix& A, const std::vector<int>& basis) {
  m_ = static_cast<int>(basis.size());
  HARE_CHECK_MSG(m_ == A.rows(), "basis size must match row count");
  prow_.assign(static_cast<std::size_t>(m_), -1);
  udiag_.assign(static_cast<std::size_t>(m_), 0.0);
  lcol_.assign(static_cast<std::size_t>(m_), {});
  ucol_.assign(static_cast<std::size_t>(m_), {});
  etas_.clear();
  work_.assign(static_cast<std::size_t>(m_), 0.0);

  std::vector<char> pivoted(static_cast<std::size_t>(m_), 0);
  std::vector<int> touched;
  touched.reserve(static_cast<std::size_t>(m_));

  for (int k = 0; k < m_; ++k) {
    // Scatter basis column k into the dense scratch.
    touched.clear();
    for (const SparseEntry& e : A.column(basis[static_cast<std::size_t>(k)])) {
      work_[static_cast<std::size_t>(e.row)] = e.value;
      touched.push_back(e.row);
    }
    // Left-looking elimination: apply the L columns of all prior steps.
    for (int j = 0; j < k; ++j) {
      const double t = work_[static_cast<std::size_t>(prow_[j])];
      if (t == 0.0) continue;
      for (const SparseEntry& e : lcol_[static_cast<std::size_t>(j)]) {
        if (work_[static_cast<std::size_t>(e.row)] == 0.0) {
          touched.push_back(e.row);
        }
        work_[static_cast<std::size_t>(e.row)] -= t * e.value;
      }
    }
    // Partial pivoting over unpivoted rows; lowest row index breaks ties so
    // the factorization — and everything downstream — is deterministic.
    int pivot_row = -1;
    double pivot_mag = 0.0;
    for (int i = 0; i < m_; ++i) {
      if (pivoted[static_cast<std::size_t>(i)]) continue;
      const double mag = std::abs(work_[static_cast<std::size_t>(i)]);
      if (mag > pivot_mag + kDropTol) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_row < 0 || pivot_mag < kSingularTol) {
      for (int r : touched) work_[static_cast<std::size_t>(r)] = 0.0;
      return false;
    }
    const double pivot = work_[static_cast<std::size_t>(pivot_row)];
    prow_[static_cast<std::size_t>(k)] = pivot_row;
    udiag_[static_cast<std::size_t>(k)] = pivot;
    pivoted[static_cast<std::size_t>(pivot_row)] = 1;
    // U entries live on already-pivoted rows; L entries on the rest.
    auto& uc = ucol_[static_cast<std::size_t>(k)];
    auto& lc = lcol_[static_cast<std::size_t>(k)];
    for (int j = 0; j < k; ++j) {
      const double v = work_[static_cast<std::size_t>(prow_[j])];
      if (std::abs(v) > kDropTol) uc.push_back(SparseEntry{j, v});
    }
    for (int i = 0; i < m_; ++i) {
      if (pivoted[static_cast<std::size_t>(i)]) continue;
      const double v = work_[static_cast<std::size_t>(i)];
      if (std::abs(v) > kDropTol) lc.push_back(SparseEntry{i, v / pivot});
    }
    for (int r : touched) work_[static_cast<std::size_t>(r)] = 0.0;
    // Dense clear of rows touched twice is already handled: duplicates in
    // `touched` just re-zero an entry.
  }
  return true;
}

void BasisLU::ftran(const std::vector<double>& v,
                    std::vector<double>& out) const {
  // L-forward pass in the row space.
  work_ = v;
  for (int k = 0; k < m_; ++k) {
    const double t = work_[static_cast<std::size_t>(prow_[k])];
    if (t == 0.0) continue;
    for (const SparseEntry& e : lcol_[static_cast<std::size_t>(k)]) {
      work_[static_cast<std::size_t>(e.row)] -= t * e.value;
    }
  }
  // U-back substitution: position k gets work[prow_k]/udiag_k, then the
  // U column of step k is eliminated from earlier pivot rows.
  out.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = m_ - 1; k >= 0; --k) {
    const double y = work_[static_cast<std::size_t>(prow_[k])] /
                     udiag_[static_cast<std::size_t>(k)];
    out[static_cast<std::size_t>(k)] = y;
    if (y == 0.0) continue;
    for (const SparseEntry& e : ucol_[static_cast<std::size_t>(k)]) {
      work_[static_cast<std::size_t>(prow_[e.row])] -= e.value * y;
    }
  }
  // Product-form chain, oldest first: w_p' = w_p / y_p; w_i -= y_i w_p'.
  for (const Eta& eta : etas_) {
    double& wp = out[static_cast<std::size_t>(eta.position)];
    if (wp == 0.0) continue;
    wp /= eta.pivot;
    for (const SparseEntry& e : eta.other) {
      out[static_cast<std::size_t>(e.row)] -= e.value * wp;
    }
  }
}

void BasisLU::btran(const std::vector<double>& v,
                    std::vector<double>& out) const {
  // Transposed eta chain, newest first: v_p' = (v_p − Σ y_i v_i) / y_p.
  work_ = v;
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = work_[static_cast<std::size_t>(it->position)];
    for (const SparseEntry& e : it->other) {
      s -= e.value * work_[static_cast<std::size_t>(e.row)];
    }
    work_[static_cast<std::size_t>(it->position)] = s / it->pivot;
  }
  // Uᵀ forward solve: z[prow_k] = (v_k − Σ_j u_{jk} z[prow_j]) / udiag_k.
  out.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    double s = work_[static_cast<std::size_t>(k)];
    for (const SparseEntry& e : ucol_[static_cast<std::size_t>(k)]) {
      s -= e.value * out[static_cast<std::size_t>(prow_[e.row])];
    }
    out[static_cast<std::size_t>(prow_[k])] =
        s / udiag_[static_cast<std::size_t>(k)];
  }
  // Lᵀ backward pass in the row space.
  for (int k = m_ - 1; k >= 0; --k) {
    double s = 0.0;
    for (const SparseEntry& e : lcol_[static_cast<std::size_t>(k)]) {
      s += e.value * out[static_cast<std::size_t>(e.row)];
    }
    out[static_cast<std::size_t>(prow_[k])] -= s;
  }
}

bool BasisLU::update(int p, const std::vector<double>& spike) {
  const double pivot = spike[static_cast<std::size_t>(p)];
  if (std::abs(pivot) < kUpdatePivotTol) return false;
  Eta eta;
  eta.position = p;
  eta.pivot = pivot;
  for (int i = 0; i < m_; ++i) {
    if (i == p) continue;
    const double v = spike[static_cast<std::size_t>(i)];
    if (std::abs(v) > kDropTol) eta.other.push_back(SparseEntry{i, v});
  }
  etas_.push_back(std::move(eta));
  return true;
}

}  // namespace hare::opt
