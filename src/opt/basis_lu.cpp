#include "opt/basis_lu.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace hare::opt {
namespace {

constexpr double kSingularTol = 1e-11;
constexpr double kUpdatePivotTol = 1e-8;
constexpr double kDropTol = 1e-12;
/// Markowitz stability screen: eligible pivot rows must be within this
/// factor of the largest magnitude in the remaining column.
constexpr double kMarkowitzRel = 0.1;
/// Right-hand sides denser than nnz * kHyperDensity > m fall back to the
/// dense sweeps (the graph walk would visit everything anyway).
constexpr int kHyperDensity = 4;

}  // namespace

bool BasisLU::factorize(const SparseMatrix& A, const std::vector<int>& basis) {
  m_ = static_cast<int>(basis.size());
  HARE_CHECK_MSG(m_ == A.rows(), "basis size must match row count");
  prow_.assign(static_cast<std::size_t>(m_), -1);
  udiag_.assign(static_cast<std::size_t>(m_), 0.0);
  lcol_.resize(static_cast<std::size_t>(m_));
  ucol_.resize(static_cast<std::size_t>(m_));
  for (int k = 0; k < m_; ++k) {
    lcol_[static_cast<std::size_t>(k)].clear();
    ucol_[static_cast<std::size_t>(k)].clear();
  }
  etas_.clear();
  work_.assign(static_cast<std::size_t>(m_), 0.0);
  hyper_built_ = false;

  std::vector<char> pivoted(static_cast<std::size_t>(m_), 0);
  std::vector<int> touched;
  touched.reserve(static_cast<std::size_t>(m_));
  // Static Markowitz counts: occupancy of each row across the basis
  // columns. A cheap once-per-factorize proxy for the dynamic fill count.
  std::vector<int> row_count;
  if (markowitz_) {
    row_count.assign(static_cast<std::size_t>(m_), 0);
    for (int k = 0; k < m_; ++k) {
      for (const SparseEntry& e :
           A.column(basis[static_cast<std::size_t>(k)])) {
        ++row_count[static_cast<std::size_t>(e.row)];
      }
    }
  }

  for (int k = 0; k < m_; ++k) {
    // Scatter basis column k into the dense scratch.
    touched.clear();
    for (const SparseEntry& e : A.column(basis[static_cast<std::size_t>(k)])) {
      work_[static_cast<std::size_t>(e.row)] = e.value;
      touched.push_back(e.row);
    }
    // Left-looking elimination: apply the L columns of all prior steps.
    for (int j = 0; j < k; ++j) {
      const double t = work_[static_cast<std::size_t>(prow_[j])];
      if (t == 0.0) continue;
      for (const SparseEntry& e : lcol_[static_cast<std::size_t>(j)]) {
        if (work_[static_cast<std::size_t>(e.row)] == 0.0) {
          touched.push_back(e.row);
        }
        work_[static_cast<std::size_t>(e.row)] -= t * e.value;
      }
    }
    // Partial pivoting over unpivoted rows; lowest row index breaks ties so
    // the factorization — and everything downstream — is deterministic.
    int pivot_row = -1;
    double pivot_mag = 0.0;
    for (int i = 0; i < m_; ++i) {
      if (pivoted[static_cast<std::size_t>(i)]) continue;
      const double mag = std::abs(work_[static_cast<std::size_t>(i)]);
      if (mag > pivot_mag + kDropTol) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_row < 0 || pivot_mag < kSingularTol) {
      for (int r : touched) work_[static_cast<std::size_t>(r)] = 0.0;
      return false;
    }
    if (markowitz_) {
      // Among rows within kMarkowitzRel of the magnitude leader, take the
      // one occupying the fewest basis columns (lowest index on ties): the
      // sparsest stable pivot produces the least fill-in.
      int best_row = pivot_row;
      int best_count = row_count[static_cast<std::size_t>(pivot_row)];
      for (int i = 0; i < m_; ++i) {
        if (pivoted[static_cast<std::size_t>(i)]) continue;
        const double mag = std::abs(work_[static_cast<std::size_t>(i)]);
        if (mag < kMarkowitzRel * pivot_mag || mag < kSingularTol) continue;
        const int count = row_count[static_cast<std::size_t>(i)];
        if (count < best_count || (count == best_count && i < best_row)) {
          best_count = count;
          best_row = i;
        }
      }
      pivot_row = best_row;
    }
    const double pivot = work_[static_cast<std::size_t>(pivot_row)];
    prow_[static_cast<std::size_t>(k)] = pivot_row;
    udiag_[static_cast<std::size_t>(k)] = pivot;
    pivoted[static_cast<std::size_t>(pivot_row)] = 1;
    // U entries live on already-pivoted rows; L entries on the rest.
    auto& uc = ucol_[static_cast<std::size_t>(k)];
    auto& lc = lcol_[static_cast<std::size_t>(k)];
    for (int j = 0; j < k; ++j) {
      const double v = work_[static_cast<std::size_t>(prow_[j])];
      if (std::abs(v) > kDropTol) uc.push_back(SparseEntry{j, v});
    }
    for (int i = 0; i < m_; ++i) {
      if (pivoted[static_cast<std::size_t>(i)]) continue;
      const double v = work_[static_cast<std::size_t>(i)];
      if (std::abs(v) > kDropTol) lc.push_back(SparseEntry{i, v / pivot});
    }
    for (int r : touched) work_[static_cast<std::size_t>(r)] = 0.0;
    // Dense clear of rows touched twice is already handled: duplicates in
    // `touched` just re-zero an entry.
  }
  if (hyper_) build_hyper_structures();
  return true;
}

void BasisLU::build_hyper_structures() {
  const std::size_t m = static_cast<std::size_t>(m_);
  row_step_.resize(m);
  for (int k = 0; k < m_; ++k) {
    row_step_[static_cast<std::size_t>(prow_[k])] = k;
  }
  u_readers_.resize(m);
  l_readers_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    u_readers_[i].clear();
    l_readers_[i].clear();
  }
  for (int k = 0; k < m_; ++k) {
    for (const SparseEntry& e : ucol_[static_cast<std::size_t>(k)]) {
      u_readers_[static_cast<std::size_t>(e.row)].push_back(k);
    }
    for (const SparseEntry& e : lcol_[static_cast<std::size_t>(k)]) {
      l_readers_[static_cast<std::size_t>(e.row)].push_back(k);
    }
  }
  swork_.assign(m, 0.0);
  pwork_.assign(m, 0.0);
  row_mark_.assign(m, 0);
  step_mark_.assign(m, 0);
  step_mark2_.assign(m, 0);
  touched_rows_.clear();
  touched_steps_.clear();
  touched_steps2_.clear();
  hyper_built_ = true;
}

void BasisLU::ftran(const std::vector<double>& v,
                    std::vector<double>& out) const {
  // L-forward pass in the row space.
  work_ = v;
  for (int k = 0; k < m_; ++k) {
    const double t = work_[static_cast<std::size_t>(prow_[k])];
    if (t == 0.0) continue;
    for (const SparseEntry& e : lcol_[static_cast<std::size_t>(k)]) {
      work_[static_cast<std::size_t>(e.row)] -= t * e.value;
    }
  }
  // U-back substitution: position k gets work[prow_k]/udiag_k, then the
  // U column of step k is eliminated from earlier pivot rows.
  out.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = m_ - 1; k >= 0; --k) {
    const double y = work_[static_cast<std::size_t>(prow_[k])] /
                     udiag_[static_cast<std::size_t>(k)];
    out[static_cast<std::size_t>(k)] = y;
    if (y == 0.0) continue;
    for (const SparseEntry& e : ucol_[static_cast<std::size_t>(k)]) {
      work_[static_cast<std::size_t>(prow_[e.row])] -= e.value * y;
    }
  }
  // Product-form chain, oldest first: w_p' = w_p / y_p; w_i -= y_i w_p'.
  for (const Eta& eta : etas_) {
    double& wp = out[static_cast<std::size_t>(eta.position)];
    if (wp == 0.0) continue;
    wp /= eta.pivot;
    for (const SparseEntry& e : eta.other) {
      out[static_cast<std::size_t>(e.row)] -= e.value * wp;
    }
  }
}

void BasisLU::btran(const std::vector<double>& v,
                    std::vector<double>& out) const {
  // Transposed eta chain, newest first: v_p' = (v_p − Σ y_i v_i) / y_p.
  work_ = v;
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = work_[static_cast<std::size_t>(it->position)];
    for (const SparseEntry& e : it->other) {
      s -= e.value * work_[static_cast<std::size_t>(e.row)];
    }
    work_[static_cast<std::size_t>(it->position)] = s / it->pivot;
  }
  // Uᵀ forward solve: z[prow_k] = (v_k − Σ_j u_{jk} z[prow_j]) / udiag_k.
  out.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    double s = work_[static_cast<std::size_t>(k)];
    for (const SparseEntry& e : ucol_[static_cast<std::size_t>(k)]) {
      s -= e.value * out[static_cast<std::size_t>(prow_[e.row])];
    }
    out[static_cast<std::size_t>(prow_[k])] =
        s / udiag_[static_cast<std::size_t>(k)];
  }
  // Lᵀ backward pass in the row space.
  for (int k = m_ - 1; k >= 0; --k) {
    double s = 0.0;
    for (const SparseEntry& e : lcol_[static_cast<std::size_t>(k)]) {
      s += e.value * out[static_cast<std::size_t>(e.row)];
    }
    out[static_cast<std::size_t>(prow_[k])] -= s;
  }
}

void BasisLU::ftran_sparse(const std::vector<double>& v,
                           const std::vector<int>& v_rows,
                           std::vector<double>& out,
                           std::vector<int>& out_pos) const {
  out_pos.clear();
  if (!hyper_built_ ||
      static_cast<int>(v_rows.size()) * kHyperDensity > m_) {
    ftran(v, out);
    out_pos.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) out_pos[static_cast<std::size_t>(i)] = i;
    return;
  }

  const auto min_cmp = std::greater<int>();
  heap_.clear();
  touched_rows_.clear();
  touched_steps_.clear();
  const auto push_step_min = [&](int k) {
    if (step_mark_[static_cast<std::size_t>(k)]) return;
    step_mark_[static_cast<std::size_t>(k)] = 1;
    touched_steps_.push_back(k);
    heap_.push_back(k);
    std::push_heap(heap_.begin(), heap_.end(), min_cmp);
  };
  const auto mark_row = [&](int r) {
    if (row_mark_[static_cast<std::size_t>(r)]) return false;
    row_mark_[static_cast<std::size_t>(r)] = 1;
    touched_rows_.push_back(r);
    return true;
  };

  // L pass: fire reachable steps in the same ascending order as the dense
  // sweep; a step whose input cancelled to exactly zero is skipped there
  // and here alike, so the arithmetic performed is identical.
  for (int r : v_rows) {
    swork_[static_cast<std::size_t>(r)] = v[static_cast<std::size_t>(r)];
    mark_row(r);
    push_step_min(row_step_[static_cast<std::size_t>(r)]);
  }
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), min_cmp);
    const int k = heap_.back();
    heap_.pop_back();
    const double t = swork_[static_cast<std::size_t>(prow_[k])];
    if (t == 0.0) continue;
    for (const SparseEntry& e : lcol_[static_cast<std::size_t>(k)]) {
      if (mark_row(e.row)) {
        push_step_min(row_step_[static_cast<std::size_t>(e.row)]);
      }
      swork_[static_cast<std::size_t>(e.row)] -= t * e.value;
    }
  }
  for (int s : touched_steps_) step_mark_[static_cast<std::size_t>(s)] = 0;
  touched_steps_.clear();

  // U back substitution, descending through reachable steps only.
  heap_.clear();
  const auto push_step_max = [&](int k) {
    if (step_mark_[static_cast<std::size_t>(k)]) return;
    step_mark_[static_cast<std::size_t>(k)] = 1;
    touched_steps_.push_back(k);
    heap_.push_back(k);
    std::push_heap(heap_.begin(), heap_.end());
  };
  for (std::size_t i = 0; i < touched_rows_.size(); ++i) {
    push_step_max(row_step_[static_cast<std::size_t>(touched_rows_[i])]);
  }
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const int k = heap_.back();
    heap_.pop_back();
    const double y = swork_[static_cast<std::size_t>(prow_[k])] /
                     udiag_[static_cast<std::size_t>(k)];
    if (y == 0.0) continue;
    out[static_cast<std::size_t>(k)] = y;
    out_pos.push_back(k);
    for (const SparseEntry& e : ucol_[static_cast<std::size_t>(k)]) {
      mark_row(prow_[static_cast<std::size_t>(e.row)]);
      swork_[static_cast<std::size_t>(prow_[static_cast<std::size_t>(
          e.row)])] -= e.value * y;
      push_step_max(e.row);
    }
  }
  for (int s : touched_steps_) step_mark_[static_cast<std::size_t>(s)] = 0;
  touched_steps_.clear();

  // Product-form chain: positions stay sparse; new nonzeros join out_pos.
  for (int p : out_pos) step_mark_[static_cast<std::size_t>(p)] = 1;
  for (const Eta& eta : etas_) {
    double& wp = out[static_cast<std::size_t>(eta.position)];
    if (wp == 0.0) continue;
    wp /= eta.pivot;
    for (const SparseEntry& e : eta.other) {
      if (!step_mark_[static_cast<std::size_t>(e.row)]) {
        step_mark_[static_cast<std::size_t>(e.row)] = 1;
        out_pos.push_back(e.row);
      }
      out[static_cast<std::size_t>(e.row)] -= e.value * wp;
    }
  }
  for (int p : out_pos) step_mark_[static_cast<std::size_t>(p)] = 0;

  for (int r : touched_rows_) {
    swork_[static_cast<std::size_t>(r)] = 0.0;
    row_mark_[static_cast<std::size_t>(r)] = 0;
  }
  touched_rows_.clear();
  std::sort(out_pos.begin(), out_pos.end());
}

void BasisLU::btran_sparse(const std::vector<double>& v,
                           const std::vector<int>& v_pos,
                           std::vector<double>& out,
                           std::vector<int>& out_rows) const {
  out_rows.clear();
  if (!hyper_built_ ||
      static_cast<int>(v_pos.size()) * kHyperDensity > m_) {
    btran(v, out);
    out_rows.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) out_rows[static_cast<std::size_t>(i)] = i;
    return;
  }

  touched_rows_.clear();
  touched_steps_.clear();
  const auto mark_pos = [&](int p) {
    if (step_mark_[static_cast<std::size_t>(p)]) return;
    step_mark_[static_cast<std::size_t>(p)] = 1;
    touched_steps_.push_back(p);
  };
  const auto mark_row = [&](int r) {
    if (row_mark_[static_cast<std::size_t>(r)]) return;
    row_mark_[static_cast<std::size_t>(r)] = 1;
    touched_rows_.push_back(r);
  };

  for (int p : v_pos) {
    pwork_[static_cast<std::size_t>(p)] = v[static_cast<std::size_t>(p)];
    mark_pos(p);
  }
  // Transposed eta chain reads scattered positions; it runs in full (the
  // chain is short and bounded by the refactor interval) exactly as the
  // dense sweep does.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = pwork_[static_cast<std::size_t>(it->position)];
    for (const SparseEntry& e : it->other) {
      s -= e.value * pwork_[static_cast<std::size_t>(e.row)];
    }
    pwork_[static_cast<std::size_t>(it->position)] = s / it->pivot;
    mark_pos(it->position);
  }

  // Uᵀ forward solve: ascending reachable steps; u_readers_ wakes the
  // later steps whose sums read a freshly nonzero pivot row.
  const auto min_cmp = std::greater<int>();
  heap_.clear();
  heap_.assign(touched_steps_.begin(), touched_steps_.end());
  std::make_heap(heap_.begin(), heap_.end(), min_cmp);
  const auto push_step_min = [&](int k) {
    if (step_mark_[static_cast<std::size_t>(k)]) return;
    step_mark_[static_cast<std::size_t>(k)] = 1;
    touched_steps_.push_back(k);
    heap_.push_back(k);
    std::push_heap(heap_.begin(), heap_.end(), min_cmp);
  };
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), min_cmp);
    const int k = heap_.back();
    heap_.pop_back();
    double s = pwork_[static_cast<std::size_t>(k)];
    for (const SparseEntry& e : ucol_[static_cast<std::size_t>(k)]) {
      s -= e.value *
           out[static_cast<std::size_t>(prow_[static_cast<std::size_t>(
               e.row)])];
    }
    const double z = s / udiag_[static_cast<std::size_t>(k)];
    if (z == 0.0) continue;
    out[static_cast<std::size_t>(prow_[k])] = z;
    mark_row(prow_[static_cast<std::size_t>(k)]);
    for (int reader : u_readers_[static_cast<std::size_t>(k)]) {
      push_step_min(reader);
    }
  }

  // Lᵀ backward pass: descending steps that read a nonzero row.
  heap_.clear();
  const auto push_step_max = [&](int k) {
    if (step_mark2_[static_cast<std::size_t>(k)]) return;
    step_mark2_[static_cast<std::size_t>(k)] = 1;
    touched_steps2_.push_back(k);
    heap_.push_back(k);
    std::push_heap(heap_.begin(), heap_.end());
  };
  for (std::size_t i = 0; i < touched_rows_.size(); ++i) {
    for (int reader :
         l_readers_[static_cast<std::size_t>(touched_rows_[i])]) {
      push_step_max(reader);
    }
  }
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const int k = heap_.back();
    heap_.pop_back();
    double s = 0.0;
    for (const SparseEntry& e : lcol_[static_cast<std::size_t>(k)]) {
      s += e.value * out[static_cast<std::size_t>(e.row)];
    }
    if (s == 0.0) continue;
    const int r = prow_[static_cast<std::size_t>(k)];
    out[static_cast<std::size_t>(r)] -= s;
    if (!row_mark_[static_cast<std::size_t>(r)]) {
      row_mark_[static_cast<std::size_t>(r)] = 1;
      touched_rows_.push_back(r);
      for (int reader : l_readers_[static_cast<std::size_t>(r)]) {
        push_step_max(reader);
      }
    }
  }
  for (int s : touched_steps2_) step_mark2_[static_cast<std::size_t>(s)] = 0;
  touched_steps2_.clear();

  out_rows.assign(touched_rows_.begin(), touched_rows_.end());
  std::sort(out_rows.begin(), out_rows.end());
  for (int r : touched_rows_) row_mark_[static_cast<std::size_t>(r)] = 0;
  touched_rows_.clear();
  for (int p : touched_steps_) {
    pwork_[static_cast<std::size_t>(p)] = 0.0;
    step_mark_[static_cast<std::size_t>(p)] = 0;
  }
  touched_steps_.clear();
}

bool BasisLU::update(int p, const std::vector<double>& spike) {
  const double pivot = spike[static_cast<std::size_t>(p)];
  if (std::abs(pivot) < kUpdatePivotTol) return false;
  Eta eta;
  eta.position = p;
  eta.pivot = pivot;
  for (int i = 0; i < m_; ++i) {
    if (i == p) continue;
    const double v = spike[static_cast<std::size_t>(i)];
    if (std::abs(v) > kDropTol) eta.other.push_back(SparseEntry{i, v});
  }
  etas_.push_back(std::move(eta));
  return true;
}

bool BasisLU::update_sparse(int p, const std::vector<double>& spike,
                            const std::vector<int>& spike_pos) {
  const double pivot = spike[static_cast<std::size_t>(p)];
  if (std::abs(pivot) < kUpdatePivotTol) return false;
  Eta eta;
  eta.position = p;
  eta.pivot = pivot;
  for (int i : spike_pos) {
    if (i == p) continue;
    const double v = spike[static_cast<std::size_t>(i)];
    if (std::abs(v) > kDropTol) eta.other.push_back(SparseEntry{i, v});
  }
  etas_.push_back(std::move(eta));
  return true;
}

}  // namespace hare::opt
