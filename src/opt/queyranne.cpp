#include "opt/queyranne.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace hare::opt {

QueyranneCut separate_queyranne_cut(const std::vector<double>& t,
                                    const std::vector<double>& x,
                                    double tolerance) {
  HARE_CHECK_MSG(t.size() == x.size(), "times/point size mismatch");
  const std::size_t n = t.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return a < b;
  });

  // Scan prefixes of the sorted order, tracking the most violated one.
  double lhs = 0.0;       // sum T_i x_i over prefix
  double t_sum = 0.0;     // sum T_i
  double t_sq_sum = 0.0;  // sum T_i^2
  double best_violation = tolerance;
  std::size_t best_prefix = 0;

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order[k];
    lhs += t[i] * x[i];
    t_sum += t[i];
    t_sq_sum += t[i] * t[i];
    const double rhs = 0.5 * (t_sum * t_sum - t_sq_sum);
    const double violation = rhs - lhs;
    if (violation > best_violation) {
      best_violation = violation;
      best_prefix = k + 1;
    }
  }

  QueyranneCut cut;
  if (best_prefix > 0) {
    cut.subset.assign(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(best_prefix));
    cut.violation = best_violation;
  }
  return cut;
}

double queyranne_full_set_bound(const std::vector<double>& t) {
  double t_sum = 0.0;
  double t_sq_sum = 0.0;
  for (double v : t) {
    t_sum += v;
    t_sq_sum += v * v;
  }
  return 0.5 * (t_sum * t_sum + t_sq_sum);
}

}  // namespace hare::opt
