#include "opt/queyranne.hpp"

#include <algorithm>
#include <iterator>
#include <numeric>

#include "common/error.hpp"

namespace hare::opt {

QueyranneCut separate_queyranne_cut(const std::vector<double>& t,
                                    const std::vector<double>& x,
                                    double tolerance) {
  HARE_CHECK_MSG(t.size() == x.size(), "times/point size mismatch");
  const std::size_t n = t.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return a < b;
  });

  // Scan prefixes of the sorted order, tracking the most violated one.
  double lhs = 0.0;       // sum T_i x_i over prefix
  double t_sum = 0.0;     // sum T_i
  double t_sq_sum = 0.0;  // sum T_i^2
  double best_violation = tolerance;
  std::size_t best_prefix = 0;

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order[k];
    lhs += t[i] * x[i];
    t_sum += t[i];
    t_sq_sum += t[i] * t[i];
    const double rhs = 0.5 * (t_sum * t_sum - t_sq_sum);
    const double violation = rhs - lhs;
    if (violation > best_violation) {
      best_violation = violation;
      best_prefix = k + 1;
    }
  }

  QueyranneCut cut;
  if (best_prefix > 0) {
    cut.subset.assign(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(best_prefix));
    cut.violation = best_violation;
  }
  return cut;
}

const QueyranneCut& IncrementalSeparator::separate(const std::vector<double>& x,
                                                   double tolerance) {
  HARE_CHECK_MSG(t_.size() == x.size(), "times/point size mismatch");
  const std::size_t n = t_.size();
  auto by_point = [&](std::size_t a, std::size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return a < b;
  };

  if (last_x_.empty()) {
    // First call: full sort, exactly as separate_queyranne_cut does.
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    std::sort(order_.begin(), order_.end(), by_point);
    last_resorted_ = n;
    last_x_ = x;
    scan_prefixes(x, tolerance);
    return last_cut_;
  }

  // Dirty set: coordinates whose value moved since the previous call.
  // Exact comparison is deliberate — the planner separates canonicalized
  // (grid-snapped) vertices, so unchanged means bitwise unchanged.
  is_dirty_.assign(n, 0);
  dirty_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] != last_x_[i]) {
      is_dirty_[i] = 1;
      dirty_.push_back(i);
    }
  }

  if (dirty_.empty()) {
    // Identical point: the most violated prefix is unchanged too.
    last_resorted_ = 0;
    return last_cut_;
  }

  // The clean subsequence of the previous order is still sorted under
  // (x, index) — none of its keys changed. Sort only the dirty block and
  // merge on the same comparator.
  clean_.clear();
  for (const std::size_t i : order_) {
    if (!is_dirty_[i]) clean_.push_back(i);
  }
  std::sort(dirty_.begin(), dirty_.end(), by_point);
  order_.clear();
  std::merge(clean_.begin(), clean_.end(), dirty_.begin(), dirty_.end(),
             std::back_inserter(order_), by_point);

  last_resorted_ = dirty_.size();
  last_x_ = x;
  scan_prefixes(x, tolerance);
  return last_cut_;
}

void IncrementalSeparator::scan_prefixes(const std::vector<double>& x,
                                         double tolerance) {
  // Same prefix scan as separate_queyranne_cut, over the maintained order.
  double lhs = 0.0;
  double t_sum = 0.0;
  double t_sq_sum = 0.0;
  double best_violation = tolerance;
  std::size_t best_prefix = 0;

  for (std::size_t k = 0; k < order_.size(); ++k) {
    const std::size_t i = order_[k];
    lhs += t_[i] * x[i];
    t_sum += t_[i];
    t_sq_sum += t_[i] * t_[i];
    const double rhs = 0.5 * (t_sum * t_sum - t_sq_sum);
    const double violation = rhs - lhs;
    if (violation > best_violation) {
      best_violation = violation;
      best_prefix = k + 1;
    }
  }

  last_cut_.subset.clear();
  last_cut_.violation = 0.0;
  if (best_prefix > 0) {
    last_cut_.subset.assign(
        order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(best_prefix));
    last_cut_.violation = best_violation;
  }
}

double queyranne_full_set_bound(const std::vector<double>& t) {
  double t_sum = 0.0;
  double t_sq_sum = 0.0;
  for (double v : t) {
    t_sum += v;
    t_sq_sum += v * v;
  }
  return 0.5 * (t_sum * t_sum + t_sq_sum);
}

}  // namespace hare::opt
