// Dense two-phase primal simplex LP solver with warm-started re-solves.
//
// Stands in for the commercial solver (CPLEX/Gurobi) the paper uses for the
// Hare_Sched_RL relaxation. Problems are stated in the natural form
//   minimize cᵀx   s.t.  aᵀx {<=,>=,=} b,  x >= 0
// and converted internally to standard form with slack/surplus/artificial
// variables. Sized for the LP-mode relaxation on small/medium instances
// (hundreds of variables); the fluid relaxation covers cluster scale.
//
// Two entry points:
//  * LinearProgram::solve() — one-shot cold solve (phase 1 + phase 2).
//  * IncrementalLpSolver — retains the optimal basis between solves so a
//    cutting-plane loop (solve → separate → add ≥-cut → re-solve) restores
//    feasibility with a handful of dual-simplex pivots instead of a cold
//    restart. This is the standard warm start a commercial solver applies
//    when rows are appended, and it is what makes the LpCuts relaxation
//    usable inside a continuously re-planning scheduler.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace hare::opt {

enum class Relation { LessEqual, GreaterEqual, Equal };

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> values;

  [[nodiscard]] bool optimal() const { return status == LpStatus::Optimal; }
};

/// Simplex pivot counts of one solve() call, split by phase. A warm-started
/// re-solve runs only dual (and possibly a few primal cleanup) pivots.
struct LpIterationStats {
  std::size_t phase1 = 0;  ///< feasibility pivots (cold solve only)
  std::size_t phase2 = 0;  ///< primal optimality pivots
  std::size_t dual = 0;    ///< dual pivots restoring feasibility after cuts

  [[nodiscard]] std::size_t total() const { return phase1 + phase2 + dual; }
};

class LinearProgram {
 public:
  /// Add a variable with the given objective coefficient (x >= 0 implicit).
  /// Returns the variable's index.
  std::size_t add_variable(double objective_coefficient);

  /// Add a constraint sum(coeff[i] * x[var[i]]) rel rhs. Terms may repeat a
  /// variable; coefficients accumulate.
  void add_constraint(const std::vector<std::pair<std::size_t, double>>& terms,
                      Relation rel, double rhs);

  [[nodiscard]] std::size_t variable_count() const { return objective_.size(); }
  [[nodiscard]] std::size_t constraint_count() const { return rows_.size(); }

  /// Minimize. `max_iterations` guards against cycling (Bland's rule is
  /// engaged automatically after a stall). `stats`, when given, receives
  /// the pivot counts of this solve.
  [[nodiscard]] LpSolution solve(std::size_t max_iterations = 100000,
                                 LpIterationStats* stats = nullptr) const;

 private:
  friend class IncrementalLpSolver;

  struct Row {
    std::vector<std::pair<std::size_t, double>> terms;
    Relation rel = Relation::LessEqual;
    double rhs = 0.0;
  };

  std::vector<double> objective_;
  std::vector<Row> rows_;
};

/// Stateful solver for cutting-plane loops. Construct from a fully built
/// LinearProgram, call solve() (cold two-phase), then alternate
/// add_ge_constraint() / solve(): each re-solve starts from the retained
/// optimal basis and prices the appended rows in with dual-simplex pivots.
/// With `warm_start = false` the solver degrades to a cold two-phase solve
/// per call — the pre-warm-start reference path the perf bench compares
/// against.
class IncrementalLpSolver {
 public:
  explicit IncrementalLpSolver(const LinearProgram& lp, bool warm_start = true);
  ~IncrementalLpSolver();
  IncrementalLpSolver(IncrementalLpSolver&&) noexcept;
  IncrementalLpSolver& operator=(IncrementalLpSolver&&) noexcept;

  /// Append `terms >= rhs`. Takes effect at the next solve().
  void add_ge_constraint(
      const std::vector<std::pair<std::size_t, double>>& terms, double rhs);

  /// Solve / re-solve. The first call is always a cold two-phase solve;
  /// later calls re-optimize from the previous basis when warm_start is on.
  [[nodiscard]] LpSolution solve(std::size_t max_iterations = 100000);

  /// Pivot counts of the most recent solve() call.
  [[nodiscard]] const LpIterationStats& last_stats() const;

  /// True when the most recent solve() reused the previous basis.
  [[nodiscard]] bool last_solve_was_warm() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hare::opt
