// Dense two-phase primal simplex LP solver.
//
// Stands in for the commercial solver (CPLEX/Gurobi) the paper uses for the
// Hare_Sched_RL relaxation. Problems are stated in the natural form
//   minimize cᵀx   s.t.  aᵀx {<=,>=,=} b,  x >= 0
// and converted internally to standard form with slack/surplus/artificial
// variables. Sized for the LP-mode relaxation on small/medium instances
// (hundreds of variables); the fluid relaxation covers cluster scale.
#pragma once

#include <cstddef>
#include <vector>

namespace hare::opt {

enum class Relation { LessEqual, GreaterEqual, Equal };

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> values;

  [[nodiscard]] bool optimal() const { return status == LpStatus::Optimal; }
};

class LinearProgram {
 public:
  /// Add a variable with the given objective coefficient (x >= 0 implicit).
  /// Returns the variable's index.
  std::size_t add_variable(double objective_coefficient);

  /// Add a constraint sum(coeff[i] * x[var[i]]) rel rhs. Terms may repeat a
  /// variable; coefficients accumulate.
  void add_constraint(const std::vector<std::pair<std::size_t, double>>& terms,
                      Relation rel, double rhs);

  [[nodiscard]] std::size_t variable_count() const { return objective_.size(); }
  [[nodiscard]] std::size_t constraint_count() const { return rows_.size(); }

  /// Minimize. `max_iterations` guards against cycling (Bland's rule is
  /// engaged automatically after a stall).
  [[nodiscard]] LpSolution solve(std::size_t max_iterations = 100000) const;

 private:
  struct Row {
    std::vector<std::pair<std::size_t, double>> terms;
    Relation rel = Relation::LessEqual;
    double rhs = 0.0;
  };

  std::vector<double> objective_;
  std::vector<Row> rows_;
};

}  // namespace hare::opt
