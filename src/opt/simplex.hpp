// LP front end with two interchangeable simplex backends.
//
// Stands in for the commercial solver (CPLEX/Gurobi) the paper uses for the
// Hare_Sched_RL relaxation. Problems are stated in the natural form
//   minimize cᵀx   s.t.  aᵀx {<=,>=,=} b,  l <= x <= u
// (bounds default to x >= 0; single-variable release/bound constraints
// should be stated as bounds, not rows — they then never enter the row
// space of either backend).
//
// Backends:
//  * LpBackend::Sparse (default) — sparse revised simplex: column-sparse
//    matrix, LU-factorized basis with eta updates and periodic
//    refactorization, Devex pricing, native bounded variables. See
//    revised_simplex.hpp.
//  * LpBackend::Dense — the original dense two-phase tableau, kept as a
//    slow reference path for cross-checking. Bounded variables are handled
//    by shifting (x = l + x') plus internal upper-bound rows.
//  * LpBackend::Auto resolves to Sparse unless the HARE_LP_BACKEND
//    environment variable says "dense" (or "sparse").
//
// Both backends break every pricing/ratio/factorization tie to the lowest
// variable index, so each is deterministic run-to-run; they agree on the
// optimal objective to solver tolerance but may sit on different optimal
// vertices — callers that need a backend-independent point canonicalize on
// top (see core/relaxation.cpp).
//
// Two entry points:
//  * LinearProgram::solve() — one-shot cold solve (phase 1 + phase 2).
//  * IncrementalLpSolver — retains the optimal basis between solves so a
//    cutting-plane loop (solve → separate → add ≥-cut → re-solve) restores
//    feasibility with a handful of dual-simplex pivots instead of a cold
//    restart. This is the standard warm start a commercial solver applies
//    when rows are appended, and it is what makes the LpCuts relaxation
//    usable inside a continuously re-planning scheduler.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

namespace hare::opt {

enum class Relation { LessEqual, GreaterEqual, Equal };

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

enum class LpBackend { Auto, Dense, Sparse };

/// Resolve Auto against the HARE_LP_BACKEND environment variable
/// ("dense" / "sparse"); defaults to Sparse. Dense/Sparse pass through.
[[nodiscard]] LpBackend resolve_lp_backend(LpBackend requested);

[[nodiscard]] const char* lp_backend_name(LpBackend backend);

/// Sub-mode of the sparse backend.
///  * Classic — the plain revised simplex: dense triangular sweeps, full
///    Devex pricing scans, partial-pivoting LU. The reference the
///    hyper-sparse path is benchmarked against.
///  * Hyper — graph-driven FTRAN/BTRAN on sparse right-hand sides,
///    row-view pricing passes touching only the columns that intersect the
///    BTRAN nonzeros, candidate-list partial Devex pricing, and
///    Markowitz-style LU pivoting.
///  * Auto — resolve against HARE_LP_SPARSE_MODE ("classic"/"hyper");
///    otherwise the solver flips to Hyper only on wide LPs (see
///    RevisedSimplex), so the small cut/serve LPs keep their exact classic
///    trajectories.
enum class SparseMode { Auto, Classic, Hyper };

/// Resolve Auto against HARE_LP_SPARSE_MODE; an unset/unknown value keeps
/// Auto (solver-side width heuristic). Classic/Hyper pass through.
[[nodiscard]] SparseMode resolve_sparse_mode(SparseMode requested);

[[nodiscard]] const char* sparse_mode_name(SparseMode mode);

struct LpSolution {
  LpStatus status = LpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> values;

  [[nodiscard]] bool optimal() const { return status == LpStatus::Optimal; }
};

/// Simplex pivot counts of one solve() call, split by phase. A warm-started
/// re-solve runs only dual (and possibly a few primal cleanup) pivots.
struct LpIterationStats {
  std::size_t phase1 = 0;  ///< feasibility pivots (cold solve only)
  std::size_t phase2 = 0;  ///< primal optimality pivots
  std::size_t dual = 0;    ///< dual pivots restoring feasibility after cuts

  [[nodiscard]] std::size_t total() const { return phase1 + phase2 + dual; }
};

class LinearProgram {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// Add a variable with the given objective coefficient and bounds
  /// [0, +inf). Returns the variable's index.
  std::size_t add_variable(double objective_coefficient);

  /// Replace the variable's objective coefficient.
  void set_objective(std::size_t var, double coefficient);

  /// Set bounds lower <= x[var] <= upper. `lower` must be finite (both
  /// backends anchor nonbasic variables at their lower bound); `upper` may
  /// be kInfinity. lower == upper fixes the variable.
  void set_bounds(std::size_t var, double lower, double upper);

  /// Add a constraint sum(coeff[i] * x[var[i]]) rel rhs. Terms may repeat a
  /// variable; coefficients accumulate.
  void add_constraint(const std::vector<std::pair<std::size_t, double>>& terms,
                      Relation rel, double rhs);

  [[nodiscard]] std::size_t variable_count() const { return objective_.size(); }
  [[nodiscard]] std::size_t constraint_count() const { return rows_.size(); }

  /// Total constraint-matrix nonzeros across rows (bound entries excluded —
  /// that is the point of stating bounds as bounds).
  [[nodiscard]] std::size_t nonzero_count() const { return nonzeros_; }

  [[nodiscard]] double lower_bound(std::size_t var) const {
    return lower_[var];
  }
  [[nodiscard]] double upper_bound(std::size_t var) const {
    return upper_[var];
  }

  /// Minimize. `max_iterations` guards against cycling (Bland's rule is
  /// engaged automatically after a stall). `stats`, when given, receives
  /// the pivot counts of this solve.
  [[nodiscard]] LpSolution solve(std::size_t max_iterations = 100000,
                                 LpIterationStats* stats = nullptr,
                                 LpBackend backend = LpBackend::Auto) const;

 private:
  friend class IncrementalLpSolver;
  friend class RevisedSimplex;

  struct Row {
    std::vector<std::pair<std::size_t, double>> terms;
    Relation rel = Relation::LessEqual;
    double rhs = 0.0;
  };

  std::vector<double> objective_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<Row> rows_;
  std::size_t nonzeros_ = 0;
};

/// Stateful solver for cutting-plane loops. Construct from a fully built
/// LinearProgram, call solve() (cold two-phase), then alternate
/// add_ge_constraint() / solve(): each re-solve starts from the retained
/// optimal basis and prices the appended rows in with dual-simplex pivots.
/// With `warm_start = false` the solver degrades to a cold two-phase solve
/// per call — the pre-warm-start reference path the perf bench compares
/// against.
class IncrementalLpSolver {
 public:
  explicit IncrementalLpSolver(const LinearProgram& lp, bool warm_start = true,
                               LpBackend backend = LpBackend::Auto);
  ~IncrementalLpSolver();
  IncrementalLpSolver(IncrementalLpSolver&&) noexcept;
  IncrementalLpSolver& operator=(IncrementalLpSolver&&) noexcept;

  /// Append `terms >= rhs`. Takes effect at the next solve().
  void add_ge_constraint(
      const std::vector<std::pair<std::size_t, double>>& terms, double rhs);

  /// Append a structural variable with the given objective coefficient and
  /// bounds [lower, upper]; later add_ge_constraint calls may reference it.
  /// On the sparse backend with a live optimal basis the column lands on the
  /// retained basis (it enters nonbasic at `lower`, so the old duals stay
  /// exact and the next solve() is a pure dual-simplex warm re-solve;
  /// `objective_coefficient` must be >= 0 and `lower` finite on that path).
  /// The dense backend invalidates its basis and re-solves cold. Returns the
  /// new variable's index.
  std::size_t add_variable(double objective_coefficient, double lower,
                           double upper);

  /// Solve / re-solve. The first call is always a cold two-phase solve;
  /// later calls re-optimize from the previous basis when warm_start is on.
  [[nodiscard]] LpSolution solve(std::size_t max_iterations = 100000);

  /// Pivot counts of the most recent solve() call.
  [[nodiscard]] const LpIterationStats& last_stats() const;

  /// True when the most recent solve() reused the previous basis.
  [[nodiscard]] bool last_solve_was_warm() const;

  /// The backend this solver resolved to at construction.
  [[nodiscard]] LpBackend backend() const;

  /// Request a sparse-backend sub-mode (Classic/Hyper/Auto). Takes effect
  /// from the next cold solve; the dense backend ignores it.
  void set_sparse_mode(SparseMode mode);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hare::opt
