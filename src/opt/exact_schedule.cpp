#include "opt/exact_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hare::opt {

namespace {

/// Search state: per-GPU horizons plus per-job round progress. Tasks of
/// one round are interchangeable, so only the count scheduled matters
/// (symmetry breaking); a round's tasks become schedulable once the
/// previous round is fully *scheduled* (its barrier is then known).
struct JobProgress {
  std::uint32_t current_round = 0;
  std::uint32_t scheduled_in_round = 0;
  Time release = 0.0;  ///< arrival or previous round's barrier
  Time barrier = 0.0;  ///< max finish (incl. sync) in the current round
};

struct Search {
  const cluster::Cluster& cluster;
  const workload::JobSet& jobs;
  const profiler::TimeTable& times;

  std::vector<Time> phi;
  std::vector<JobProgress> progress;
  std::vector<Time> min_round;  ///< per job: fastest possible round time

  double best = std::numeric_limits<double>::infinity();
  std::vector<GpuId> best_gpu;
  std::vector<Time> best_start;
  std::vector<GpuId> current_gpu;
  std::vector<Time> current_start;
  std::size_t nodes = 0;
  std::size_t remaining_tasks = 0;

  [[nodiscard]] double lower_bound(double partial) const {
    // Each unfinished job still needs its remaining rounds, each at least
    // the fastest single-round time, starting no earlier than its current
    // release.
    double bound = partial;
    for (const auto& job : jobs.jobs()) {
      const auto j = static_cast<std::size_t>(job.id.value());
      const JobProgress& p = progress[j];
      if (p.current_round >= job.rounds()) continue;
      const double rounds_after_current =
          static_cast<double>(job.rounds() - p.current_round - 1);
      // The current round ends no earlier than its barrier so far and no
      // earlier than release + one fastest round; each later round adds at
      // least one fastest round.
      const Time current_round_end =
          std::max(p.barrier, p.release + min_round[j]);
      bound += job.spec.weight *
               (current_round_end + rounds_after_current * min_round[j]);
    }
    return bound;
  }

  void dfs(double partial) {
    ++nodes;
    HARE_CHECK_MSG(nodes < 50'000'000,
                   "exact solver node budget exhausted; instance too large");
    if (remaining_tasks == 0) {
      if (partial < best) {
        best = partial;
        best_gpu = current_gpu;
        best_start = current_start;
      }
      return;
    }
    if (lower_bound(partial) >= best) return;

    for (const auto& job : jobs.jobs()) {
      const auto j = static_cast<std::size_t>(job.id.value());
      JobProgress& p = progress[j];
      if (p.current_round >= job.rounds()) continue;

      const TaskId task_id =
          jobs.round_tasks(job.id,
                           static_cast<RoundIndex>(p.current_round))
              [p.scheduled_in_round];
      const auto t = static_cast<std::size_t>(task_id.value());

      for (std::size_t g = 0; g < phi.size(); ++g) {
        const GpuId gpu(static_cast<int>(g));
        const Time start = std::max(p.release, phi[g]);
        const Time tc = times.tc(job.id, gpu);
        const Time ts = times.ts(job.id, gpu);

        const JobProgress saved = p;
        const Time saved_phi = phi[g];

        phi[g] = start + tc;  // sync overlaps the GPU's next task
        p.barrier = std::max(p.barrier, start + tc + ts);
        ++p.scheduled_in_round;
        current_gpu[t] = gpu;
        current_start[t] = start;

        double next_partial = partial;
        bool finished_job = false;
        if (p.scheduled_in_round == job.tasks_per_round()) {
          if (p.current_round + 1 == job.rounds()) {
            next_partial += job.spec.weight * p.barrier;
            finished_job = true;
            p.current_round = job.rounds();
          } else {
            ++p.current_round;
            p.scheduled_in_round = 0;
            p.release = p.barrier;
            p.barrier = 0.0;
          }
        }
        (void)finished_job;
        --remaining_tasks;
        dfs(next_partial);
        ++remaining_tasks;

        p = saved;
        phi[g] = saved_phi;
      }
    }
  }
};

}  // namespace

ExactScheduleResult solve_exact_schedule(const cluster::Cluster& cluster,
                                         const workload::JobSet& jobs,
                                         const profiler::TimeTable& times,
                                         std::size_t max_tasks) {
  HARE_CHECK_MSG(jobs.task_count() <= max_tasks,
                 "instance has " << jobs.task_count()
                                 << " tasks; exact solver capped at "
                                 << max_tasks);
  HARE_CHECK_MSG(cluster.gpu_count() > 0, "cluster has no GPUs");

  Search search{cluster, jobs, times,
                std::vector<Time>(cluster.gpu_count(), 0.0),
                {}, {}, std::numeric_limits<double>::infinity(),
                {}, {}, {}, {}, 0, jobs.task_count()};
  search.progress.resize(jobs.job_count());
  search.min_round.resize(jobs.job_count());
  for (const auto& job : jobs.jobs()) {
    const auto j = static_cast<std::size_t>(job.id.value());
    search.progress[j].release = job.spec.arrival;
    Time fastest = kTimeInfinity;
    for (std::size_t g = 0; g < cluster.gpu_count(); ++g) {
      fastest = std::min(fastest,
                         times.total(job.id, GpuId(static_cast<int>(g))));
    }
    search.min_round[j] = fastest;
  }
  search.current_gpu.resize(jobs.task_count());
  search.current_start.resize(jobs.task_count(), 0.0);

  search.dfs(0.0);
  HARE_CHECK_MSG(std::isfinite(search.best), "exact search found no schedule");

  ExactScheduleResult result;
  result.objective = search.best;
  result.gpu = std::move(search.best_gpu);
  result.start = std::move(search.best_start);
  result.nodes_explored = search.nodes;
  return result;
}

}  // namespace hare::opt
