#include "opt/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hare::opt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDualTol = 1e-7;    ///< reduced-cost optimality tolerance
constexpr double kPrimalTol = 1e-7;  ///< bound feasibility tolerance
constexpr double kPivotTol = 1e-9;   ///< smallest usable ratio-test pivot
constexpr double kRatioTol = 1e-9;   ///< ratio-test tie tolerance
constexpr double kStepTol = 1e-9;    ///< steps below this count as degenerate
constexpr double kFixedTol = 1e-12;
constexpr double kDevexReset = 1e8;
/// Consecutive degenerate steps before Bland's rule engages.
constexpr std::size_t kStallThreshold = 64;
/// Partial-pricing candidate list size (hyper mode).
constexpr std::size_t kCandidateCap = 256;

}  // namespace

RevisedSimplex::RevisedSimplex(const LinearProgram& lp) {
  n_ = static_cast<int>(lp.objective_.size());
  m_ = static_cast<int>(lp.rows_.size());
  cost_ = lp.objective_;
  lower_ = lp.lower_;
  upper_ = lp.upper_;
  rhs_.reserve(static_cast<std::size_t>(m_));

  A_ = SparseMatrix(m_);
  A_.reserve_columns(static_cast<std::size_t>(n_ + m_) + 64);
  for (int j = 0; j < n_; ++j) A_.add_column();
  for (int i = 0; i < m_; ++i) {
    const auto& row = lp.rows_[static_cast<std::size_t>(i)];
    for (const auto& [var, coeff] : row.terms) {
      A_.push(static_cast<int>(var), i, coeff);
    }
    rhs_.push_back(row.rhs);
  }
  struct_col_.resize(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j) struct_col_[static_cast<std::size_t>(j)] = j;
  // One logical per row: a·x + s = b with s bounded by the relation.
  cost_.resize(static_cast<std::size_t>(n_ + m_), 0.0);
  logical_col_.reserve(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    const int col = A_.add_column();
    logical_col_.push_back(col);
    A_.push(col, i, 1.0);
    switch (lp.rows_[static_cast<std::size_t>(i)].rel) {
      case Relation::LessEqual:
        lower_.push_back(0.0);
        upper_.push_back(kInf);
        break;
      case Relation::GreaterEqual:
        lower_.push_back(-kInf);
        upper_.push_back(0.0);
        break;
      case Relation::Equal:
        lower_.push_back(0.0);
        upper_.push_back(0.0);
        break;
    }
  }
}

bool RevisedSimplex::is_fixed(int j) const {
  return upper_[static_cast<std::size_t>(j)] -
             lower_[static_cast<std::size_t>(j)] <=
         kFixedTol;
}

double RevisedSimplex::nonbasic_value(int j) const {
  return vstat_[static_cast<std::size_t>(j)] == VarStatus::AtUpper
             ? upper_[static_cast<std::size_t>(j)]
             : lower_[static_cast<std::size_t>(j)];
}

bool RevisedSimplex::refactorize() { return lu_.factorize(A_, basis_); }

void RevisedSimplex::resolve_mode() {
  if (mode_resolved_) return;
  mode_resolved_ = true;
  const SparseMode mode = resolve_sparse_mode(mode_);
  if (mode == SparseMode::Hyper) {
    hyper_ = true;
  } else if (mode == SparseMode::Classic) {
    hyper_ = false;
  } else {
    hyper_ = total_cols() >= kHyperMinCols &&
             total_cols() >= kHyperWideFactor * std::max(m_, 1);
  }
  if (hyper_) {
    lu_.set_hyper(true);
    lu_.set_markowitz(true);
    if (!A_.row_view_enabled()) A_.enable_row_view();
  }
}

const std::vector<int>& RevisedSimplex::spike_positions() {
  if (hyper_) return spike_nz_;
  if (static_cast<int>(all_pos_.size()) != m_) {
    all_pos_.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) all_pos_[static_cast<std::size_t>(i)] = i;
  }
  return all_pos_;
}

void RevisedSimplex::row_pass(const std::vector<double>& w,
                              const std::vector<int>& rows) {
  const std::size_t cols = static_cast<std::size_t>(total_cols());
  if (acc_.size() != cols) {
    acc_.assign(cols, 0.0);
    acc_mark_.assign(cols, 0);
  }
  for (int r : rows) {
    const double wr = w[static_cast<std::size_t>(r)];
    if (wr == 0.0) continue;
    for (const RowEntry& e : A_.row(r)) {
      if (!acc_mark_[static_cast<std::size_t>(e.col)]) {
        acc_mark_[static_cast<std::size_t>(e.col)] = 1;
        acc_cols_.push_back(e.col);
      }
      acc_[static_cast<std::size_t>(e.col)] += e.value * wr;
    }
  }
  // Ascending column order keeps every downstream tie-break and update
  // sequence identical to the classic full scan.
  std::sort(acc_cols_.begin(), acc_cols_.end());
}

void RevisedSimplex::clear_row_pass() {
  for (int j : acc_cols_) {
    acc_[static_cast<std::size_t>(j)] = 0.0;
    acc_mark_[static_cast<std::size_t>(j)] = 0;
  }
  acc_cols_.clear();
}

int RevisedSimplex::price_candidates(double& sigma) {
  int enter = -1;
  double best = 0.0;
  std::size_t keep = 0;
  for (int j : cand_) {
    if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic ||
        is_fixed(j)) {
      continue;  // drop from the list
    }
    const double d = dual_[static_cast<std::size_t>(j)];
    const bool at_lower =
        vstat_[static_cast<std::size_t>(j)] == VarStatus::AtLower;
    if (at_lower ? d >= -kDualTol : d <= kDualTol) continue;  // drop
    cand_[keep++] = j;
    const double score = d * d / devex_[static_cast<std::size_t>(j)];
    if (score > best) {
      best = score;
      enter = j;
      sigma = at_lower ? 1.0 : -1.0;
    }
  }
  cand_.resize(keep);
  return enter;
}

void RevisedSimplex::refill_candidates() {
  cand_.clear();
  for (int j = 0; j < total_cols(); ++j) {
    if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic ||
        is_fixed(j)) {
      continue;
    }
    const double d = dual_[static_cast<std::size_t>(j)];
    const bool at_lower =
        vstat_[static_cast<std::size_t>(j)] == VarStatus::AtLower;
    if (at_lower ? d >= -kDualTol : d <= kDualTol) continue;
    cand_.push_back(j);
  }
  if (cand_.size() > kCandidateCap) {
    const auto score_of = [&](int j) {
      const double d = dual_[static_cast<std::size_t>(j)];
      return d * d / devex_[static_cast<std::size_t>(j)];
    };
    std::nth_element(
        cand_.begin(),
        cand_.begin() + static_cast<std::ptrdiff_t>(kCandidateCap),
        cand_.end(), [&](int a, int b) {
          const double sa = score_of(a);
          const double sb = score_of(b);
          return sa > sb || (sa == sb && a < b);
        });
    cand_.resize(kCandidateCap);
    std::sort(cand_.begin(), cand_.end());
  }
}

void RevisedSimplex::compute_xb() {
  // B x_B = b − Σ_nonbasic a_j x̄_j.
  col_buf_ = rhs_;
  for (int j = 0; j < total_cols(); ++j) {
    if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic) continue;
    const double v = nonbasic_value(j);
    if (v != 0.0) A_.scatter_column(j, -v, col_buf_);
  }
  lu_.ftran(col_buf_, xb_);
}

void RevisedSimplex::compute_duals() {
  pos_buf_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    pos_buf_[static_cast<std::size_t>(i)] =
        cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
  }
  lu_.btran(pos_buf_, y_);
  dual_.assign(static_cast<std::size_t>(total_cols()), 0.0);
  for (int j = 0; j < total_cols(); ++j) {
    if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic) continue;
    dual_[static_cast<std::size_t>(j)] =
        cost_[static_cast<std::size_t>(j)] - A_.column_dot(j, y_);
  }
}

void RevisedSimplex::ftran_column(int j) {
  col_buf_.assign(static_cast<std::size_t>(m_), 0.0);
  A_.scatter_column(j, 1.0, col_buf_);
  if (hyper_) {
    if (static_cast<int>(spike_.size()) != m_) {
      spike_.assign(static_cast<std::size_t>(m_), 0.0);
    } else {
      for (int p : spike_nz_) spike_[static_cast<std::size_t>(p)] = 0.0;
    }
    tmp_rows_.clear();
    for (const SparseEntry& e : A_.column(j)) tmp_rows_.push_back(e.row);
    lu_.ftran_sparse(col_buf_, tmp_rows_, spike_, spike_nz_);
    return;
  }
  lu_.ftran(col_buf_, spike_);
}

void RevisedSimplex::btran_row(int position) {
  pos_buf_.assign(static_cast<std::size_t>(m_), 0.0);
  pos_buf_[static_cast<std::size_t>(position)] = 1.0;
  if (hyper_) {
    if (static_cast<int>(rho_.size()) != m_) {
      rho_.assign(static_cast<std::size_t>(m_), 0.0);
    } else {
      for (int r : rho_nz_) rho_[static_cast<std::size_t>(r)] = 0.0;
    }
    tmp_pos_.clear();
    tmp_pos_.push_back(position);
    lu_.btran_sparse(pos_buf_, tmp_pos_, rho_, rho_nz_);
    return;
  }
  lu_.btran(pos_buf_, rho_);
}

void RevisedSimplex::bound_flip(int var, double sigma, double step) {
  for (int i : spike_positions()) {
    const double a = spike_[static_cast<std::size_t>(i)];
    if (a != 0.0) xb_[static_cast<std::size_t>(i)] -= sigma * step * a;
  }
  vstat_[static_cast<std::size_t>(var)] =
      vstat_[static_cast<std::size_t>(var)] == VarStatus::AtLower
          ? VarStatus::AtUpper
          : VarStatus::AtLower;
}

RevisedSimplex::PivotResult RevisedSimplex::pivot_exchange(
    int position, int enter, double sigma, double step,
    VarStatus leaving_status) {
  const int leaving = basis_[static_cast<std::size_t>(position)];
  const double enter_value = nonbasic_value(enter) + sigma * step;
  for (int i : spike_positions()) {
    const double a = spike_[static_cast<std::size_t>(i)];
    if (a != 0.0) xb_[static_cast<std::size_t>(i)] -= sigma * step * a;
  }
  pos_of_[static_cast<std::size_t>(leaving)] = -1;
  vstat_[static_cast<std::size_t>(leaving)] = leaving_status;
  basis_[static_cast<std::size_t>(position)] = enter;
  pos_of_[static_cast<std::size_t>(enter)] = position;
  vstat_[static_cast<std::size_t>(enter)] = VarStatus::Basic;
  xb_[static_cast<std::size_t>(position)] = enter_value;

  const bool updated = hyper_ ? lu_.update_sparse(position, spike_, spike_nz_)
                              : lu_.update(position, spike_);
  if (!updated || lu_.needs_refactor()) {
    if (!refactorize()) return PivotResult::Failed;
    compute_xb();
    return PivotResult::Refactored;
  }
  return PivotResult::Ok;
}

// ---------------------------------------------------------------------------
// Phase 1: composite infeasibility minimization from the all-logical basis.
// The piecewise objective (per-unit cost −1 below lower, +1 above upper)
// changes at every breakpoint, so duals are recomputed each iteration and a
// basic variable blocks at the first bound it reaches — feasible basics at
// the bound they approach, infeasible basics at the bound they are
// violating (where they turn feasible and the cost slope changes).
// ---------------------------------------------------------------------------
LpStatus RevisedSimplex::phase1(std::size_t max_iterations,
                                std::size_t* pivots) {
  std::size_t stall = 0;
  if (hyper_) {
    // y_ may hold a stale dense result (compute_duals); restore the
    // all-zero invariant btran_sparse needs once per phase.
    y_.assign(static_cast<std::size_t>(m_), 0.0);
    y_nz_.clear();
  }
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    double infeasibility = 0.0;
    pos_buf_.assign(static_cast<std::size_t>(m_), 0.0);
    tmp_pos_.clear();
    for (int i = 0; i < m_; ++i) {
      const int v = basis_[static_cast<std::size_t>(i)];
      const double x = xb_[static_cast<std::size_t>(i)];
      const double lo = lower_[static_cast<std::size_t>(v)];
      const double hi = upper_[static_cast<std::size_t>(v)];
      if (x < lo - kPrimalTol) {
        pos_buf_[static_cast<std::size_t>(i)] = -1.0;
        tmp_pos_.push_back(i);
        infeasibility += lo - x;
      } else if (x > hi + kPrimalTol) {
        pos_buf_[static_cast<std::size_t>(i)] = 1.0;
        tmp_pos_.push_back(i);
        infeasibility += x - hi;
      }
    }
    if (infeasibility <= kPrimalTol * static_cast<double>(1 + m_)) {
      return LpStatus::Optimal;  // primal feasible — phase 2 takes over
    }

    const bool bland = stall >= kStallThreshold;
    int enter = -1;
    double best = 0.0;
    double sigma = 1.0;
    if (hyper_) {
      for (int r : y_nz_) y_[static_cast<std::size_t>(r)] = 0.0;
      lu_.btran_sparse(pos_buf_, tmp_pos_, y_, y_nz_);
      row_pass(y_, y_nz_);
      for (int j : acc_cols_) {
        if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic ||
            is_fixed(j)) {
          continue;
        }
        const double d = -acc_[static_cast<std::size_t>(j)];
        const bool at_lower =
            vstat_[static_cast<std::size_t>(j)] == VarStatus::AtLower;
        if (at_lower ? d >= -kDualTol : d <= kDualTol) continue;
        if (bland) {
          enter = j;
          sigma = at_lower ? 1.0 : -1.0;
          break;
        }
        const double score = std::abs(d);
        if (score > best) {
          best = score;
          enter = j;
          sigma = at_lower ? 1.0 : -1.0;
        }
      }
      clear_row_pass();
    } else {
      lu_.btran(pos_buf_, y_);
      for (int j = 0; j < total_cols(); ++j) {
        if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic ||
            is_fixed(j)) {
          continue;
        }
        const double d = -A_.column_dot(j, y_);  // nonbasic phase-1 cost is 0
        const bool at_lower =
            vstat_[static_cast<std::size_t>(j)] == VarStatus::AtLower;
        if (at_lower ? d >= -kDualTol : d <= kDualTol) continue;
        if (bland) {
          enter = j;
          sigma = at_lower ? 1.0 : -1.0;
          break;
        }
        const double score = std::abs(d);
        if (score > best) {
          best = score;
          enter = j;
          sigma = at_lower ? 1.0 : -1.0;
        }
      }
    }
    if (enter < 0) return LpStatus::Infeasible;

    ftran_column(enter);
    int leave = -1;
    double t_row = kInf;
    VarStatus leave_status = VarStatus::AtLower;
    for (int i : spike_positions()) {
      const double a = sigma * spike_[static_cast<std::size_t>(i)];
      if (std::abs(a) <= kPivotTol) continue;
      const int v = basis_[static_cast<std::size_t>(i)];
      const double x = xb_[static_cast<std::size_t>(i)];
      const double lo = lower_[static_cast<std::size_t>(v)];
      const double hi = upper_[static_cast<std::size_t>(v)];
      double target;
      VarStatus status;
      if (a > 0.0) {  // x decreases with the step
        if (x < lo - kPrimalTol) continue;  // moving further below: no block
        target = x > hi + kPrimalTol ? hi : lo;
        status = x > hi + kPrimalTol ? VarStatus::AtUpper : VarStatus::AtLower;
      } else {  // x increases
        if (x > hi + kPrimalTol) continue;
        target = x < lo - kPrimalTol ? lo : hi;
        status = x < lo - kPrimalTol ? VarStatus::AtLower : VarStatus::AtUpper;
      }
      if (std::isinf(target)) continue;
      double ti = (x - target) / a;
      if (ti < 0.0) ti = 0.0;
      if (ti < t_row - kRatioTol ||
          (ti < t_row + kRatioTol && leave >= 0 &&
           v < basis_[static_cast<std::size_t>(leave)])) {
        t_row = ti;
        leave = i;
        leave_status = status;
      }
    }
    const double t_bound = upper_[static_cast<std::size_t>(enter)] -
                           lower_[static_cast<std::size_t>(enter)];
    if (leave < 0 && std::isinf(t_bound)) return LpStatus::IterationLimit;

    if (pivots) ++*pivots;
    if (t_bound <= t_row) {
      bound_flip(enter, sigma, t_bound);
      stall = t_bound <= kStepTol ? stall + 1 : 0;
      continue;
    }
    const PivotResult res =
        pivot_exchange(leave, enter, sigma, t_row, leave_status);
    if (res == PivotResult::Failed) return LpStatus::IterationLimit;
    stall = t_row <= kStepTol ? stall + 1 : 0;
  }
  return LpStatus::IterationLimit;
}

// ---------------------------------------------------------------------------
// Phase 2: Devex-priced primal iterations on the true objective. Reduced
// costs are maintained incrementally with the BTRAN(e_r) row pass (which
// also feeds the Devex weight update) and recomputed from scratch after a
// refactorization and before optimality is declared.
// ---------------------------------------------------------------------------
LpStatus RevisedSimplex::phase2(std::size_t max_iterations,
                                std::size_t* pivots) {
  compute_duals();
  devex_.assign(static_cast<std::size_t>(total_cols()), 1.0);
  cand_.clear();
  std::size_t stall = 0;
  bool duals_fresh = true;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const bool bland = stall >= kStallThreshold;
    int enter = -1;
    double best = 0.0;
    double sigma = 1.0;
    if (hyper_ && !bland) {
      // Candidate-list partial pricing: serve pivots from the warm list
      // and rescan all columns only when it runs dry. Optimality is still
      // only declared after a full (refill) scan over fresh duals.
      enter = price_candidates(sigma);
      if (enter < 0) {
        refill_candidates();
        enter = price_candidates(sigma);
      }
    } else {
      for (int j = 0; j < total_cols(); ++j) {
        if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic ||
            is_fixed(j)) {
          continue;
        }
        const double d = dual_[static_cast<std::size_t>(j)];
        const bool at_lower =
            vstat_[static_cast<std::size_t>(j)] == VarStatus::AtLower;
        if (at_lower ? d >= -kDualTol : d <= kDualTol) continue;
        if (bland) {
          enter = j;
          sigma = at_lower ? 1.0 : -1.0;
          break;
        }
        const double score = d * d / devex_[static_cast<std::size_t>(j)];
        if (score > best) {
          best = score;
          enter = j;
          sigma = at_lower ? 1.0 : -1.0;
        }
      }
    }
    if (enter < 0) {
      if (duals_fresh) return LpStatus::Optimal;
      // Incremental reduced costs drift; confirm optimality on fresh duals.
      compute_duals();
      duals_fresh = true;
      continue;
    }
    duals_fresh = false;

    ftran_column(enter);
    int leave = -1;
    double t_row = kInf;
    VarStatus leave_status = VarStatus::AtLower;
    for (int i : spike_positions()) {
      const double a = sigma * spike_[static_cast<std::size_t>(i)];
      if (std::abs(a) <= kPivotTol) continue;
      const int v = basis_[static_cast<std::size_t>(i)];
      const double bound = a > 0.0 ? lower_[static_cast<std::size_t>(v)]
                                   : upper_[static_cast<std::size_t>(v)];
      if (std::isinf(bound)) continue;
      double ti = (xb_[static_cast<std::size_t>(i)] - bound) / a;
      if (ti < 0.0) ti = 0.0;
      if (ti < t_row - kRatioTol ||
          (ti < t_row + kRatioTol && leave >= 0 &&
           v < basis_[static_cast<std::size_t>(leave)])) {
        t_row = ti;
        leave = i;
        leave_status = a > 0.0 ? VarStatus::AtLower : VarStatus::AtUpper;
      }
    }
    const double t_bound = upper_[static_cast<std::size_t>(enter)] -
                           lower_[static_cast<std::size_t>(enter)];
    if (leave < 0 && std::isinf(t_bound)) return LpStatus::Unbounded;

    if (pivots) ++*pivots;
    if (t_bound <= t_row) {
      bound_flip(enter, sigma, t_bound);
      stall = t_bound <= kStepTol ? stall + 1 : 0;
      continue;
    }

    // Row pass: update reduced costs + Devex weights before the exchange.
    const double alpha_r = spike_[static_cast<std::size_t>(leave)];
    const double d_enter = dual_[static_cast<std::size_t>(enter)];
    const double ratio_d = d_enter / alpha_r;
    const double w_enter = devex_[static_cast<std::size_t>(enter)];
    const int leaving = basis_[static_cast<std::size_t>(leave)];
    btran_row(leave);
    double w_max = 1.0;
    if (hyper_) {
      // Row-view pass: only columns intersecting the BTRAN nonzeros can
      // have arj != 0; per-column sums accumulate in ascending row order,
      // matching column_dot's term order on those rows exactly.
      row_pass(rho_, rho_nz_);
      for (const int j : acc_cols_) {
        if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic ||
            j == enter) {
          continue;
        }
        const double arj = acc_[static_cast<std::size_t>(j)];
        if (arj == 0.0) continue;
        dual_[static_cast<std::size_t>(j)] -= ratio_d * arj;
        const double ref = arj / alpha_r;
        double& w = devex_[static_cast<std::size_t>(j)];
        w = std::max(w, ref * ref * w_enter);
        w_max = std::max(w_max, w);
      }
      clear_row_pass();
    } else {
      for (int j = 0; j < total_cols(); ++j) {
        if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic ||
            j == enter) {
          continue;
        }
        const double arj = A_.column_dot(j, rho_);
        if (arj == 0.0) continue;
        dual_[static_cast<std::size_t>(j)] -= ratio_d * arj;
        const double ref = arj / alpha_r;
        double& w = devex_[static_cast<std::size_t>(j)];
        w = std::max(w, ref * ref * w_enter);
        w_max = std::max(w_max, w);
      }
    }
    dual_[static_cast<std::size_t>(leaving)] = -ratio_d;
    dual_[static_cast<std::size_t>(enter)] = 0.0;
    devex_[static_cast<std::size_t>(leaving)] =
        std::max(w_enter / (alpha_r * alpha_r), 1.0);
    if (w_max > kDevexReset) {
      devex_.assign(static_cast<std::size_t>(total_cols()), 1.0);
    }

    const PivotResult res =
        pivot_exchange(leave, enter, sigma, t_row, leave_status);
    if (res == PivotResult::Failed) return LpStatus::IterationLimit;
    if (res == PivotResult::Refactored) {
      compute_duals();
      duals_fresh = true;
    }
    stall = t_row <= kStepTol ? stall + 1 : 0;
  }
  return LpStatus::IterationLimit;
}

// ---------------------------------------------------------------------------
// Dual simplex: restores primal feasibility after cut rows are appended
// while keeping dual feasibility (the appended logicals enter the basis
// with zero cost, so the retained duals stay exact). Leaving row = worst
// bound violation; entering column = dual ratio test over the BTRAN row.
// ---------------------------------------------------------------------------
LpStatus RevisedSimplex::dual_phase(std::size_t max_iterations,
                                    std::size_t* pivots) {
  compute_duals();
  std::size_t stall = 0;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const bool bland = stall >= kStallThreshold;
    int leave = -1;
    double worst = kPrimalTol;
    bool below = false;
    for (int i = 0; i < m_; ++i) {
      const int v = basis_[static_cast<std::size_t>(i)];
      const double x = xb_[static_cast<std::size_t>(i)];
      const double viol_low = lower_[static_cast<std::size_t>(v)] - x;
      const double viol_up = x - upper_[static_cast<std::size_t>(v)];
      const double viol = std::max(viol_low, viol_up);
      if (viol <= kPrimalTol) continue;
      if (bland) {
        // Lowest-variable-index infeasible row under the anti-cycling rule.
        if (leave < 0 || v < basis_[static_cast<std::size_t>(leave)]) {
          leave = i;
          below = viol_low >= viol_up;
        }
        continue;
      }
      if (viol > worst ||
          (viol > worst - kRatioTol && leave >= 0 &&
           v < basis_[static_cast<std::size_t>(leave)])) {
        worst = std::max(viol, worst);
        leave = i;
        below = viol_low >= viol_up;
      }
    }
    if (leave < 0) return LpStatus::Optimal;  // primal feasible again

    const int leaving = basis_[static_cast<std::size_t>(leave)];
    const double delta = below ? 1.0 : -1.0;
    btran_row(leave);
    // One row pass serves both the dual ratio test and the later reduced-
    // cost update; acc_ stays populated until clear_row_pass() below.
    if (hyper_) row_pass(rho_, rho_nz_);
    int enter = -1;
    double best_ratio = kInf;
    double alpha_rq = 0.0;
    const std::vector<int>* scan_cols = hyper_ ? &acc_cols_ : nullptr;
    const int scan_count =
        scan_cols ? static_cast<int>(scan_cols->size()) : total_cols();
    for (int idx = 0; idx < scan_count; ++idx) {
      const int j = scan_cols ? (*scan_cols)[static_cast<std::size_t>(idx)]
                              : idx;
      if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic ||
          is_fixed(j)) {
        continue;
      }
      const double arj = scan_cols ? acc_[static_cast<std::size_t>(j)]
                                   : A_.column_dot(j, rho_);
      if (std::abs(arj) <= kPivotTol) continue;
      const bool at_lower =
          vstat_[static_cast<std::size_t>(j)] == VarStatus::AtLower;
      // xb_r moves by −arj per unit increase of j; an AtLower variable can
      // only increase, an AtUpper one only decrease.
      if (at_lower ? arj * delta >= 0.0 : arj * delta <= 0.0) continue;
      const double ratio =
          std::abs(dual_[static_cast<std::size_t>(j)]) / std::abs(arj);
      if (ratio < best_ratio - kRatioTol ||
          (ratio < best_ratio + kRatioTol && enter >= 0 && j < enter)) {
        best_ratio = ratio;
        enter = j;
        alpha_rq = arj;
      }
    }
    if (enter < 0) {
      if (hyper_) clear_row_pass();
      return LpStatus::Infeasible;  // cut system is empty
    }

    ftran_column(enter);
    const double alpha_r = spike_[static_cast<std::size_t>(leave)];
    if (std::abs(alpha_r) <= kPivotTol) {
      if (hyper_) clear_row_pass();
      return LpStatus::IterationLimit;
    }
    const double target = below ? lower_[static_cast<std::size_t>(leaving)]
                                : upper_[static_cast<std::size_t>(leaving)];
    const double step = (xb_[static_cast<std::size_t>(leave)] - target) /
                        alpha_r;  // signed entering step

    const double ratio_d = dual_[static_cast<std::size_t>(enter)] / alpha_r;
    for (int idx = 0; idx < scan_count; ++idx) {
      const int j = scan_cols ? (*scan_cols)[static_cast<std::size_t>(idx)]
                              : idx;
      if (vstat_[static_cast<std::size_t>(j)] == VarStatus::Basic ||
          j == enter) {
        continue;
      }
      const double arj = scan_cols ? acc_[static_cast<std::size_t>(j)]
                                   : A_.column_dot(j, rho_);
      if (arj != 0.0) dual_[static_cast<std::size_t>(j)] -= ratio_d * arj;
    }
    if (hyper_) clear_row_pass();
    dual_[static_cast<std::size_t>(leaving)] = -ratio_d;
    dual_[static_cast<std::size_t>(enter)] = 0.0;

    if (pivots) ++*pivots;
    const PivotResult res = pivot_exchange(
        leave, enter, 1.0, step,
        below ? VarStatus::AtLower : VarStatus::AtUpper);
    if (res == PivotResult::Failed) return LpStatus::IterationLimit;
    if (res == PivotResult::Refactored) compute_duals();
    stall = std::abs(step) <= kStepTol ? stall + 1 : 0;
    (void)alpha_rq;
  }
  return LpStatus::IterationLimit;
}

LpSolution RevisedSimplex::extract() const {
  LpSolution solution;
  solution.status = LpStatus::Optimal;
  solution.values.assign(static_cast<std::size_t>(n_), 0.0);
  double objective = 0.0;
  for (int var = 0; var < n_; ++var) {
    const int j = struct_col_[static_cast<std::size_t>(var)];
    const int pos = pos_of_[static_cast<std::size_t>(j)];
    const double v =
        pos >= 0 ? xb_[static_cast<std::size_t>(pos)] : nonbasic_value(j);
    solution.values[static_cast<std::size_t>(var)] = v;
    objective += cost_[static_cast<std::size_t>(j)] * v;
  }
  solution.objective = objective;
  return solution;
}

LpSolution RevisedSimplex::solve(std::size_t max_iterations,
                                 LpIterationStats* stats) {
  resolve_mode();
  basis_valid_ = false;
  rows_appended_ = false;
  const int cols = total_cols();
  vstat_.assign(static_cast<std::size_t>(cols), VarStatus::AtLower);
  pos_of_.assign(static_cast<std::size_t>(cols), -1);
  basis_.resize(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    const int logical = logical_col_[static_cast<std::size_t>(i)];
    basis_[static_cast<std::size_t>(i)] = logical;
    vstat_[static_cast<std::size_t>(logical)] = VarStatus::Basic;
    pos_of_[static_cast<std::size_t>(logical)] = i;
  }
  // ≥-row logicals have no lower bound; nonbasic means at upper for them.
  // (They start basic, but a later pivot can make any column nonbasic.)
  LpSolution solution;
  if (!refactorize()) {
    solution.status = LpStatus::Infeasible;
    return solution;
  }
  compute_xb();

  std::size_t sink = 0;
  LpStatus status = phase1(max_iterations, stats ? &stats->phase1 : &sink);
  if (status != LpStatus::Optimal) {
    solution.status = status;
    return solution;
  }
  status = phase2(max_iterations, stats ? &stats->phase2 : &sink);
  if (status != LpStatus::Optimal) {
    solution.status = status;
    return solution;
  }
  basis_valid_ = true;
  return extract();
}

void RevisedSimplex::add_ge_row(
    const std::vector<std::pair<std::size_t, double>>& terms, double rhs) {
  const int row = m_;
  A_.add_rows(1);
  for (const auto& [var, coeff] : terms) {
    HARE_CHECK_MSG(var < struct_col_.size(),
                   "cut references unknown variable " << var);
    A_.push(struct_col_[var], row, coeff);
  }
  const int logical = A_.add_column();
  logical_col_.push_back(logical);
  A_.push(logical, row, 1.0);
  ++m_;
  rhs_.push_back(rhs);
  cost_.push_back(0.0);
  lower_.push_back(-kInf);
  upper_.push_back(0.0);
  // The new logical joins the basis: the extended basis is block triangular
  // ([B 0; C I]), so the retained duals stay exact and the next resolve()
  // starts dual feasible.
  basis_.push_back(logical);
  if (!vstat_.empty()) {
    vstat_.push_back(VarStatus::Basic);
    pos_of_.push_back(m_ - 1);
    xb_.push_back(0.0);
    dual_.push_back(0.0);
    devex_.push_back(1.0);
  }
  rows_appended_ = true;
}

std::size_t RevisedSimplex::add_variable(double cost, double lower,
                                         double upper) {
  const int col = A_.add_column();
  cost_.push_back(cost);
  lower_.push_back(lower);
  upper_.push_back(upper);
  struct_col_.push_back(col);
  ++n_;
  if (!vstat_.empty()) {
    // Joining a live basis nonbasic-at-lower keeps the old duals exact only
    // when the empty column's reduced cost (= cost) is dual feasible there.
    HARE_CHECK_MSG(cost >= 0.0,
                   "warm-appended variable needs a nonnegative cost");
    HARE_CHECK_MSG(std::isfinite(lower),
                   "warm-appended variable needs a finite lower bound");
    vstat_.push_back(VarStatus::AtLower);
    pos_of_.push_back(-1);
    dual_.push_back(cost);
    devex_.push_back(1.0);
  }
  return static_cast<std::size_t>(n_) - 1;
}

LpSolution RevisedSimplex::resolve(std::size_t max_iterations,
                                   LpIterationStats* stats) {
  resolve_mode();
  if (!basis_valid_ || vstat_.empty()) return solve(max_iterations, stats);
  if (rows_appended_) {
    if (!refactorize()) return solve(max_iterations, stats);
    compute_xb();
    rows_appended_ = false;
  }
  basis_valid_ = false;
  std::size_t sink = 0;
  LpStatus status = dual_phase(max_iterations, stats ? &stats->dual : &sink);
  if (status == LpStatus::Optimal) {
    // Dual feasibility is maintained by the ratio test, so this usually
    // confirms optimality immediately; it cleans up numerical drift when
    // not.
    status = phase2(max_iterations, stats ? &stats->phase2 : &sink);
  }
  LpSolution solution;
  if (status != LpStatus::Optimal) {
    solution.status = status;
    return solution;
  }
  basis_valid_ = true;
  return extract();
}

}  // namespace hare::opt
