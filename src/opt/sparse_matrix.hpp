// Column-compressed sparse matrix for the revised-simplex LP core.
//
// The constraint matrix of the Hare_Sched relaxation is >99% zeros (each
// row couples 1-3 variables), so the sparse backend stores it column-wise:
// pricing (dᵀ = c - yᵀA) and spike computation (B⁻¹a_q) both stream
// columns, and the basis factorization gathers basis columns directly.
//
// Columns are individually growable: appending a Queyranne cut row touches
// only the columns of the cut's variables (amortized push_back into
// per-column headroom) plus one new logical column — never a full-matrix
// copy, which is the sparse counterpart of the dense tableau's reserved
// cut headroom.
#pragma once

#include <cstddef>
#include <vector>

namespace hare::opt {

struct SparseEntry {
  int row = 0;
  double value = 0.0;
};

/// One entry of the optional row-wise view: (column, value).
struct RowEntry {
  int col = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(int rows) : rows_(rows) {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return static_cast<int>(cols_.size()); }
  [[nodiscard]] std::size_t nonzeros() const { return nnz_; }

  /// Grow the row dimension by `extra` (new rows start empty).
  void add_rows(int extra) {
    rows_ += extra;
    if (row_view_) rows_view_.resize(static_cast<std::size_t>(rows_));
  }

  /// Reserve space for future columns (cut logicals).
  void reserve_columns(std::size_t n) { cols_.reserve(n); }

  /// Append an empty column and return its index.
  int add_column() {
    cols_.emplace_back();
    return static_cast<int>(cols_.size()) - 1;
  }

  /// Append an entry to column `col`. Rows within a column stay in the
  /// order pushed; callers push base rows first, cut rows later, so the
  /// column is row-sorted by construction. Zero values are dropped.
  void push(int col, int row, double value);

  [[nodiscard]] const std::vector<SparseEntry>& column(int j) const {
    return cols_[static_cast<std::size_t>(j)];
  }

  /// Dot product of column `j` with a dense row-indexed vector.
  [[nodiscard]] double column_dot(int j, const std::vector<double>& v) const {
    double sum = 0.0;
    for (const SparseEntry& e : cols_[static_cast<std::size_t>(j)]) {
      sum += e.value * v[static_cast<std::size_t>(e.row)];
    }
    return sum;
  }

  /// Scatter column `j`, scaled by `scale`, into a dense row-indexed
  /// accumulator.
  void scatter_column(int j, double scale, std::vector<double>& v) const {
    for (const SparseEntry& e : cols_[static_cast<std::size_t>(j)]) {
      v[static_cast<std::size_t>(e.row)] += scale * e.value;
    }
  }

  /// Build (or rebuild) the row-wise mirror of the column store. Later
  /// push() calls keep it in sync, so enabling once on a live matrix is
  /// enough. The hyper-sparse pricing passes walk rows of the few nonzero
  /// BTRAN entries instead of dotting every column.
  void enable_row_view();

  [[nodiscard]] bool row_view_enabled() const { return row_view_; }

  [[nodiscard]] const std::vector<RowEntry>& row(int i) const {
    return rows_view_[static_cast<std::size_t>(i)];
  }

 private:
  int rows_ = 0;
  std::vector<std::vector<SparseEntry>> cols_;
  std::size_t nnz_ = 0;
  bool row_view_ = false;
  std::vector<std::vector<RowEntry>> rows_view_;
};

}  // namespace hare::opt
