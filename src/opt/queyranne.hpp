// Queyranne scheduling-polyhedron cut separation.
//
// Constraint (9) of Hare_Sched_RL, imposed over every subset S of the tasks
// assigned to one machine,
//
//   sum_{i in S} T_i x_i  >=  1/2 [ (sum_{i in S} T_i)^2 - sum_{i in S} T_i^2 ]
//
// is Queyranne's (1993) polyhedral description of single-machine completion
// time vectors. There are exponentially many subsets, but the most violated
// one at a point x̂ is always a *prefix* of the tasks sorted by ascending
// x̂ — so separation is an O(n log n) sort plus a linear scan. The LP-mode
// Hare relaxation alternates solve → separate → add-cut until no subset is
// violated, which reproduces what a commercial solver does with (9).
#pragma once

#include <cstddef>
#include <vector>

namespace hare::opt {

struct QueyranneCut {
  /// Indices (into the caller's task arrays) of the violated subset.
  std::vector<std::size_t> subset;
  /// rhs - lhs at the separation point (> 0 means violated).
  double violation = 0.0;
};

/// Find the most violated subset constraint at point `x` for tasks with
/// processing times `t` (both size n). Returns a cut with empty subset when
/// none is violated beyond `tolerance`.
[[nodiscard]] QueyranneCut separate_queyranne_cut(
    const std::vector<double>& t, const std::vector<double>& x,
    double tolerance = 1e-7);

/// Lower bound on sum of T_i * C_i over any single-machine order of the
/// given processing times (the full-set Queyranne rhs with C_i = x_i + T_i):
/// 1/2 [ (sum T)^2 + sum T^2 ].
[[nodiscard]] double queyranne_full_set_bound(const std::vector<double>& t);

}  // namespace hare::opt
