// Queyranne scheduling-polyhedron cut separation.
//
// Constraint (9) of Hare_Sched_RL, imposed over every subset S of the tasks
// assigned to one machine,
//
//   sum_{i in S} T_i x_i  >=  1/2 [ (sum_{i in S} T_i)^2 - sum_{i in S} T_i^2 ]
//
// is Queyranne's (1993) polyhedral description of single-machine completion
// time vectors. There are exponentially many subsets, but the most violated
// one at a point x̂ is always a *prefix* of the tasks sorted by ascending
// x̂ — so separation is an O(n log n) sort plus a linear scan. The LP-mode
// Hare relaxation alternates solve → separate → add-cut until no subset is
// violated, which reproduces what a commercial solver does with (9).
#pragma once

#include <cstddef>
#include <vector>

namespace hare::opt {

struct QueyranneCut {
  /// Indices (into the caller's task arrays) of the violated subset.
  std::vector<std::size_t> subset;
  /// rhs - lhs at the separation point (> 0 means violated).
  double violation = 0.0;
};

/// Find the most violated subset constraint at point `x` for tasks with
/// processing times `t` (both size n). Returns a cut with empty subset when
/// none is violated beyond `tolerance`.
[[nodiscard]] QueyranneCut separate_queyranne_cut(
    const std::vector<double>& t, const std::vector<double>& x,
    double tolerance = 1e-7);

/// Lower bound on sum of T_i * C_i over any single-machine order of the
/// given processing times (the full-set Queyranne rhs with C_i = x_i + T_i):
/// 1/2 [ (sum T)^2 + sum T^2 ].
[[nodiscard]] double queyranne_full_set_bound(const std::vector<double>& t);

/// Stateful separator for cutting-plane loops that call separation on the
/// same task set at a drifting sequence of points.
///
/// Re-sorting all n tasks every round is wasted work: between consecutive
/// LP rounds most coordinates of the (canonicalized) vertex do not move, so
/// the previous round's order is almost sorted. The separator keeps the
/// order and the last point; on the next call it splits the order into the
/// still-clean subsequence — which remains sorted, since those keys did not
/// change — and the dirty coordinates, sorts only the dirty ones, and
/// merges. The comparator is the exact (x, index) lexicographic key the
/// full sort uses, and every (x, index) key is distinct, so the merged
/// order is *identical* to a from-scratch sort and the emitted cut sequence
/// matches separate_queyranne_cut bit for bit.
///
/// When no coordinate changed the cached cut is returned without any scan.
class IncrementalSeparator {
 public:
  IncrementalSeparator() = default;
  /// `t` holds the fixed processing times; its size pins n for all calls.
  explicit IncrementalSeparator(std::vector<double> t) : t_(std::move(t)) {}

  /// Separate at `x` (size n). Returns the most violated prefix cut, empty
  /// subset when none exceeds `tolerance`. The reference to the cut stays
  /// valid until the next separate() call.
  [[nodiscard]] const QueyranneCut& separate(const std::vector<double>& x,
                                             double tolerance = 1e-7);

  [[nodiscard]] std::size_t size() const { return t_.size(); }
  /// Coordinates re-sorted by the last separate() call: n on the first call
  /// (or under a full sort), |dirty| after, 0 on a cached-cut hit. The
  /// planner aggregates this into its separation-work savings metric.
  [[nodiscard]] std::size_t last_resorted() const { return last_resorted_; }

 private:
  void scan_prefixes(const std::vector<double>& x, double tolerance);

  std::vector<double> t_;
  std::vector<double> last_x_;
  std::vector<std::size_t> order_;
  // Scratch reused across rounds to keep steady-state separation
  // allocation-free.
  std::vector<std::size_t> clean_;
  std::vector<std::size_t> dirty_;
  std::vector<char> is_dirty_;
  QueyranneCut last_cut_;
  std::size_t last_resorted_ = 0;
};

}  // namespace hare::opt
