#include "opt/sparse_matrix.hpp"

#include "common/error.hpp"

namespace hare::opt {

void SparseMatrix::push(int col, int row, double value) {
  HARE_CHECK_MSG(col >= 0 && col < cols(), "sparse column out of range");
  HARE_CHECK_MSG(row >= 0 && row < rows_, "sparse row out of range");
  if (value == 0.0) return;
  auto& entries = cols_[static_cast<std::size_t>(col)];
  // Terms may repeat a variable within one constraint; accumulate in place
  // (base-row construction pushes rows in ascending order, so a duplicate
  // is always the most recent entry).
  if (!entries.empty() && entries.back().row == row) {
    entries.back().value += value;
    if (entries.back().value == 0.0) {
      entries.pop_back();
      --nnz_;
    }
    return;
  }
  entries.push_back(SparseEntry{row, value});
  ++nnz_;
}

}  // namespace hare::opt
