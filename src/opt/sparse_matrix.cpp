#include "opt/sparse_matrix.hpp"

#include "common/error.hpp"

namespace hare::opt {

void SparseMatrix::push(int col, int row, double value) {
  HARE_CHECK_MSG(col >= 0 && col < cols(), "sparse column out of range");
  HARE_CHECK_MSG(row >= 0 && row < rows_, "sparse row out of range");
  if (value == 0.0) return;
  auto& entries = cols_[static_cast<std::size_t>(col)];
  // Terms may repeat a variable within one constraint; accumulate in place
  // (base-row construction pushes rows in ascending order, so a duplicate
  // is always the most recent entry).
  if (!entries.empty() && entries.back().row == row) {
    entries.back().value += value;
    const bool cancelled = entries.back().value == 0.0;
    const double merged = entries.back().value;
    if (cancelled) {
      entries.pop_back();
      --nnz_;
    }
    if (row_view_) {
      // The duplicate's mirror entry is the latest one for this column in
      // the row list; scan from the back (duplicates are rare).
      auto& mirror = rows_view_[static_cast<std::size_t>(row)];
      for (std::size_t i = mirror.size(); i-- > 0;) {
        if (mirror[i].col != col) continue;
        if (cancelled) {
          mirror.erase(mirror.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          mirror[i].value = merged;
        }
        break;
      }
    }
    return;
  }
  entries.push_back(SparseEntry{row, value});
  ++nnz_;
  if (row_view_) {
    rows_view_[static_cast<std::size_t>(row)].push_back(RowEntry{col, value});
  }
}

void SparseMatrix::enable_row_view() {
  row_view_ = true;
  rows_view_.assign(static_cast<std::size_t>(rows_), {});
  for (int j = 0; j < cols(); ++j) {
    for (const SparseEntry& e : cols_[static_cast<std::size_t>(j)]) {
      rows_view_[static_cast<std::size_t>(e.row)].push_back(
          RowEntry{j, e.value});
    }
  }
}

}  // namespace hare::opt
