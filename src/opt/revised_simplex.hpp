// Sparse revised simplex with bounded variables — the LpBackend::Sparse
// engine behind LinearProgram::solve() and IncrementalLpSolver.
//
// The dense tableau recomputes every row × column per pivot; this solver
// keeps the constraint matrix in column-sparse form (see SparseMatrix) and
// works against an LU-factorized basis (see BasisLU), so one pivot costs a
// pair of sparse triangular solves plus one pass over the matrix nonzeros
// instead of O(rows · cols) dense arithmetic.
//
//  * Standard form: one logical column per row (a·x + s = b) with bounds
//    [0,∞) for ≤, (−∞,0] for ≥, [0,0] for =. Single-variable bound rows
//    never reach this solver — relaxation.cpp states them as variable
//    bounds, which live in the bound arrays, not the row space.
//  * Cold solve: composite phase 1 from the all-logical basis (piecewise
//    infeasibility objective, recomputed each iteration), then Devex-priced
//    primal phase 2.
//  * Warm re-solve: appended ≥-cut rows get their logicals basic, which
//    keeps the old duals exactly (the extended basis is block triangular);
//    one refactorization then dual-simplex pivots restore primal
//    feasibility.
//  * Determinism: every tie (pricing, ratio tests, LU pivoting) breaks to
//    the lowest variable/row index, so repeated runs — and the planner
//    schedules built on top — are bit-reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "opt/basis_lu.hpp"
#include "opt/simplex.hpp"
#include "opt/sparse_matrix.hpp"

namespace hare::opt {

class RevisedSimplex {
 public:
  /// Hyper-sparse auto-enable heuristic: the LP must have at least this
  /// many columns and be at least this many times wider than tall. Wide
  /// LPs are where full pricing scans dominate; everything narrower keeps
  /// the classic path (and its exact pivot trajectory).
  static constexpr int kHyperMinCols = 4096;
  static constexpr int kHyperWideFactor = 8;

  /// Snapshot the program (structural columns + bounds + base rows).
  explicit RevisedSimplex(const LinearProgram& lp);

  /// Select the sparse sub-mode (Classic/Hyper/Auto). Must be called
  /// before the first solve(); the resolved choice is sticky for the
  /// lifetime of the solver so warm re-solves stay on one path.
  void set_sparse_mode(SparseMode mode) { mode_ = mode; }

  /// True once the solver has resolved to the hyper-sparse path.
  [[nodiscard]] bool hyper_enabled() const { return hyper_; }

  /// Cold solve: composite phase 1 + Devex phase 2. `stats`, when given,
  /// accumulates pivot counts.
  [[nodiscard]] LpSolution solve(std::size_t max_iterations,
                                 LpIterationStats* stats = nullptr);

  /// Append `terms >= rhs` as a new row. Cheap: touches only the cut's
  /// columns plus one new logical. Requires a prior optimal solve when the
  /// retained basis is to be reused via resolve().
  void add_ge_row(const std::vector<std::pair<std::size_t, double>>& terms,
                  double rhs);

  /// Append a structural variable as an empty column: no entries in any
  /// existing row; later add_ge_row calls may reference it. When an optimal
  /// basis is retained the column enters nonbasic at its lower bound, so the
  /// old duals stay exact (an empty column's reduced cost is its objective
  /// coefficient) and the next resolve() starts dual feasible with zero
  /// phase-1 work — `cost` must be >= 0 and `lower` finite on that path.
  /// Returns the new variable's index.
  std::size_t add_variable(double cost, double lower, double upper);

  /// Warm re-solve after add_ge_row(): refactorize the extended basis and
  /// run dual-simplex pivots on the appended rows. Falls back to Infeasible
  /// / IterationLimit like solve(); callers may cold-restart on failure.
  [[nodiscard]] LpSolution resolve(std::size_t max_iterations,
                                   LpIterationStats* stats = nullptr);

  [[nodiscard]] bool has_optimal_basis() const { return basis_valid_; }

  [[nodiscard]] int row_count() const { return m_; }
  [[nodiscard]] int structural_count() const { return n_; }
  [[nodiscard]] std::size_t nonzeros() const { return A_.nonzeros(); }

 private:
  enum class VarStatus : unsigned char { Basic, AtLower, AtUpper };

  // Problem in standard form. m_ rows, n_ structural variables. Columns
  // start as [structural 0..n_-1 | logical per row]; appended variables and
  // appended rows' logicals interleave at the tail in append order, so the
  // maps below track which column each structural variable / row logical
  // occupies.
  int m_ = 0;
  int n_ = 0;
  SparseMatrix A_;
  std::vector<double> cost_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> rhs_;
  std::vector<int> struct_col_;   ///< structural variable -> column index
  std::vector<int> logical_col_;  ///< row -> its logical's column index

  // Basis state.
  std::vector<int> basis_;        ///< variable at each basis position
  std::vector<int> pos_of_;       ///< basis position per variable, -1 nonbasic
  std::vector<VarStatus> vstat_;
  std::vector<double> xb_;        ///< basic values by position
  std::vector<double> dual_;      ///< reduced costs per column
  std::vector<double> devex_;     ///< Devex reference weights per column
  BasisLU lu_;
  bool basis_valid_ = false;
  bool rows_appended_ = false;

  // Scratch (avoids per-iteration allocation).
  std::vector<double> col_buf_;   ///< dense row-indexed scatter buffer
  std::vector<double> spike_;     ///< B⁻¹ a_q by position
  std::vector<double> rho_;       ///< B⁻ᵀ e_r by row
  std::vector<double> pos_buf_;   ///< position-indexed scratch
  std::vector<double> y_;         ///< duals by row

  // Hyper-sparse state. spike_nz_/rho_nz_/y_nz_ list the nonzeros of the
  // latest FTRAN/BTRAN results (ascending); acc_ + acc_cols_ implement the
  // row-view pricing pass; cand_ is the partial-pricing candidate list.
  SparseMode mode_ = SparseMode::Auto;
  bool mode_resolved_ = false;
  bool hyper_ = false;
  std::vector<int> spike_nz_;
  std::vector<int> rho_nz_;
  std::vector<int> y_nz_;
  std::vector<int> tmp_rows_;
  std::vector<int> tmp_pos_;
  std::vector<int> all_pos_;      ///< identity list 0..m-1 for classic loops
  std::vector<double> acc_;
  std::vector<char> acc_mark_;
  std::vector<int> acc_cols_;
  std::vector<int> cand_;

  enum class PivotResult { Ok, Refactored, Failed };

  [[nodiscard]] int total_cols() const { return n_ + m_; }
  [[nodiscard]] bool is_fixed(int j) const;
  [[nodiscard]] double nonbasic_value(int j) const;

  [[nodiscard]] bool refactorize();
  void compute_xb();
  void compute_duals();
  void ftran_column(int j);      ///< spike_ := B⁻¹ a_j
  void btran_row(int position);  ///< rho_ := B⁻ᵀ e_position

  /// Resolve mode_ once (env + width heuristic) and arm the LU/row view.
  void resolve_mode();
  /// Positions to scan after ftran_column: spike nonzeros in hyper mode,
  /// the identity list otherwise (the classic full sweep).
  [[nodiscard]] const std::vector<int>& spike_positions();
  /// Row-view pass: acc_[j] := Σ_r w[r]·A[r,j] over the listed rows, with
  /// touched columns collected into acc_cols_ (sorted ascending).
  void row_pass(const std::vector<double>& w, const std::vector<int>& rows);
  void clear_row_pass();
  /// Partial Devex pricing over the candidate list; prunes unattractive
  /// entries in place. Returns the entering column or -1.
  int price_candidates(double& sigma);
  void refill_candidates();

  /// Basis exchange at `position`: entering `enter` moved by signed step
  /// `sigma * step` (spike_ must hold B⁻¹a_enter); the leaving variable
  /// settles at `leaving_status`. Handles xb sweep, bookkeeping, and the
  /// LU eta update / refactorization.
  [[nodiscard]] PivotResult pivot_exchange(int position, int enter,
                                           double sigma, double step,
                                           VarStatus leaving_status);
  void bound_flip(int var, double sigma, double step);

  [[nodiscard]] LpStatus phase1(std::size_t max_iterations,
                                std::size_t* pivots);
  [[nodiscard]] LpStatus phase2(std::size_t max_iterations,
                                std::size_t* pivots);
  [[nodiscard]] LpStatus dual_phase(std::size_t max_iterations,
                                    std::size_t* pivots);
  [[nodiscard]] LpSolution extract() const;
};

}  // namespace hare::opt
