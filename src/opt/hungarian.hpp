// Min-cost bipartite assignment (Hungarian algorithm, Jonker-Volgenant
// potentials formulation, O(n^2 m)).
//
// Used by the AlloX baseline (jobs × (GPU, position) matching) and by the
// LP-mode Hare relaxation to fix per-round task-to-GPU assignments.
#pragma once

#include <cstddef>
#include <vector>

namespace hare::opt {

struct AssignmentResult {
  /// assignment[r] = column matched to row r, or -1 when unmatched (only
  /// possible if rows > columns).
  std::vector<int> assignment;
  double total_cost = 0.0;
};

/// Solve min-cost assignment for a rows × cols cost matrix (row-major).
/// Requires rows <= cols; every row is matched to a distinct column.
[[nodiscard]] AssignmentResult solve_assignment(
    const std::vector<double>& cost, std::size_t rows, std::size_t cols);

}  // namespace hare::opt
