#include "opt/hungarian.hpp"

#include <limits>

#include "common/error.hpp"

namespace hare::opt {

AssignmentResult solve_assignment(const std::vector<double>& cost,
                                  std::size_t rows, std::size_t cols) {
  HARE_CHECK_MSG(rows <= cols, "assignment requires rows <= cols");
  HARE_CHECK_MSG(cost.size() == rows * cols, "cost matrix size mismatch");

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = rows;
  const std::size_t m = cols;

  // 1-based potentials formulation (classic O(n^2 m) Hungarian).
  std::vector<double> u(n + 1, 0.0);  // row potentials
  std::vector<double> v(m + 1, 0.0);  // column potentials
  std::vector<int> match(m + 1, 0);   // match[j] = row matched to column j
  std::vector<int> way(m + 1, 0);

  auto c = [&](std::size_t i, std::size_t j) {
    return cost[(i - 1) * m + (j - 1)];
  };

  for (std::size_t i = 1; i <= n; ++i) {
    match[0] = static_cast<int>(i);
    std::size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = static_cast<std::size_t>(match[j0]);
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = c(i0, j) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = static_cast<int>(j0);
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[static_cast<std::size_t>(match[j])] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    do {
      const std::size_t j1 = static_cast<std::size_t>(way[j0]);
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.assignment.assign(n, -1);
  for (std::size_t j = 1; j <= m; ++j) {
    if (match[j] != 0) {
      result.assignment[static_cast<std::size_t>(match[j] - 1)] =
          static_cast<int>(j - 1);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    HARE_CHECK_MSG(result.assignment[i] >= 0, "row left unmatched");
    result.total_cost +=
        cost[i * m + static_cast<std::size_t>(result.assignment[i])];
  }
  return result;
}

}  // namespace hare::opt
