// Exact Hare_Sched solver for tiny instances.
//
// Branch-and-bound over (task → GPU, per-GPU order) decisions under the
// full constraint set of §5.1 — arrivals (4), round barriers (7),
// non-preemption (8) — minimizing Σ w_n C_n. Exponential, intended for
// instances of at most ~10 tasks; it certifies the true optimum so tests
// can measure Algorithm 1's *actual* optimality gap (not just the gap to a
// lower bound) and verify Theorem 4's α(2+α) guarantee against OPT itself.
#pragma once

#include "cluster/cluster.hpp"
#include "profiler/time_table.hpp"
#include "workload/job.hpp"

namespace hare::opt {

struct ExactScheduleResult {
  double objective = 0.0;  ///< optimal Σ w_n C_n
  /// Optimal assignment and start per task (by TaskId value).
  std::vector<GpuId> gpu;
  std::vector<Time> start;
  std::size_t nodes_explored = 0;
};

/// Throws when the instance exceeds `max_tasks` (guard against accidental
/// exponential blowups in tests).
[[nodiscard]] ExactScheduleResult solve_exact_schedule(
    const cluster::Cluster& cluster, const workload::JobSet& jobs,
    const profiler::TimeTable& times, std::size_t max_tasks = 10);

}  // namespace hare::opt
