// Task-switching cost model (§4, Table 3, Figs 7-8).
//
// When two tasks of different jobs run back-to-back on a GPU, the
// switch-out/switch-in cost depends on the executor design:
//
//  * Default  — the predecessor tears down its CUDA context and frees
//    memory, then the successor launches a fresh process: context creation,
//    framework + model (re)construction, cudaMalloc, and a bulk host→device
//    copy of the full model. Seconds per switch.
//  * PipeSwitch — contexts are pre-created in a standby-process pool, the
//    allocator is cached, and the model transfer is pipelined per layer so
//    execution starts after the first layer group lands. Milliseconds.
//  * Hare — PipeSwitch plus (a) *early task cleaning*: each layer's
//    intermediate data is freed as soon as its backward pass finishes, so
//    cleanup is fully overlapped with the predecessor's tail and the
//    successor can begin pre-loading into the freed region (halving the
//    exposed transfer); and (b) *speculative memory management*: if the
//    successor job's model state is still resident (SpeculativeMemoryManager
//    keep heuristic), the transfer disappears entirely.
//
// Same-job back-to-back tasks share their context and weights under every
// policy (the pre-Hare status quo: consecutive tasks on a GPU belong to the
// same job), costing only a round-bookkeeping epsilon.
//
// Cold-start constants are per-model calibrations standing in for measured
// process-launch + import + model-build times on the testbed.
#pragma once

#include <cstdint>
#include <optional>

#include "cluster/gpu.hpp"
#include "common/types.hpp"
#include "switching/memory_manager.hpp"
#include "workload/model_zoo.hpp"

namespace hare::switching {

enum class SwitchPolicy : std::uint8_t { Default, PipeSwitch, Hare };

[[nodiscard]] std::string_view switch_policy_name(SwitchPolicy policy);

struct SwitchBreakdown {
  Time clean = 0.0;     ///< predecessor teardown exposed on the critical path
  Time context = 0.0;   ///< CUDA context creation
  Time init = 0.0;      ///< process/framework/model construction
  Time alloc = 0.0;     ///< allocator setup
  Time transfer = 0.0;  ///< exposed host→device model transfer
  bool model_resident = false;

  [[nodiscard]] Time total() const {
    return clean + context + init + alloc + transfer;
  }
};

struct SwitchModelConfig {
  SwitchPolicy policy = SwitchPolicy::Hare;
  /// Scheduling-theory mode: every switch costs exactly zero. Used to
  /// check that planner timelines and simulator executions coincide when
  /// the §5.1 formulation's "ignore switching" idealization holds.
  bool free_switching = false;
  /// Standby trainer processes with pre-created contexts (the prototype
  /// keeps 3). PipeSwitch/Hare pay context creation only when more distinct
  /// jobs than this interleave tightly; the pool refills off the critical
  /// path, so in steady state creation cost is hidden.
  std::uint32_t context_pool_size = 3;
  /// Fixed bookkeeping for a same-job continuation (checkpoint round id,
  /// hook updates).
  Time same_job_overhead_s = 0.0002;
  /// Per-layer pipeline stage launch overhead.
  Time per_layer_overhead_s = 0.00005;
  /// Residual bookkeeping on any cross-job switch (kernel caches, streams).
  Time switch_base_s = 0.0008;
  /// Fraction of the pipelined transfer exposed after Hare's early cleaning
  /// lets pre-loading start during the predecessor's tail.
  double hare_preload_overlap = 0.5;
};

class SwitchCostModel {
 public:
  explicit SwitchCostModel(SwitchModelConfig config) : config_(config) {}
  SwitchCostModel() : SwitchCostModel(SwitchModelConfig{}) {}

  /// Cost of starting a task of (`job`, `model`) on `gpu` when the previous
  /// task on that GPU belonged to `previous_job` (nullopt = GPU was idle
  /// and cold). `memory` is consulted/updated only under the Hare policy;
  /// pass nullptr to model a memory-manager-less executor.
  [[nodiscard]] SwitchBreakdown switch_cost(
      JobId job, workload::ModelType model, cluster::GpuType gpu,
      std::optional<JobId> previous_job,
      const SpeculativeMemoryManager* memory) const;

  /// The pure cost function behind switch_cost: a breakdown for one
  /// (model, GPU type, same-job?, had-predecessor?, model-resident?)
  /// combination, with no metrics recorded. SwitchCostTable enumerates
  /// this once per run.
  [[nodiscard]] SwitchBreakdown compute(workload::ModelType model,
                                        cluster::GpuType gpu, bool same_job,
                                        bool has_previous,
                                        bool resident) const;

  [[nodiscard]] const SwitchModelConfig& config() const { return config_; }

  /// Calibrated cold process-start + framework import + model construction
  /// time (seconds) for the Default policy.
  [[nodiscard]] static Time cold_init_seconds(workload::ModelType model);

  /// Calibrated extra exposed transfer for models whose first pipeline
  /// stage is large (embedding tables, packed RNN weights).
  [[nodiscard]] static Time pipeline_residual_seconds(workload::ModelType model);

 private:
  SwitchModelConfig config_;
};

/// Memoized switch costs: every (model, GPU type, predecessor?, resident?)
/// breakdown precomputed in one pass, so the simulator's per-event lookup
/// is a flat array read instead of re-deriving model-spec/PCIe/pipeline
/// arithmetic. The speculative memory manager is still consulted per
/// lookup (its residency state evolves during a run), and the same
/// per-switch metrics are recorded as the unmemoized path.
class SwitchCostTable {
 public:
  SwitchCostTable() = default;

  /// (Re)build for `model`'s config. Cheap: kModelCount x kGpuTypeCount x 4
  /// closed-form evaluations.
  void build(const SwitchCostModel& model);

  [[nodiscard]] bool built() const { return !entries_.empty(); }

  /// Bitwise-identical to `model.switch_cost(...)` for the model passed to
  /// build(), including the recorded metrics.
  [[nodiscard]] const SwitchBreakdown& lookup(
      JobId job, workload::ModelType model, cluster::GpuType gpu,
      std::optional<JobId> previous_job,
      const SpeculativeMemoryManager* memory) const;

 private:
  [[nodiscard]] static std::size_t index(workload::ModelType model,
                                         cluster::GpuType gpu,
                                         bool has_previous, bool resident) {
    return ((static_cast<std::size_t>(model) * cluster::kGpuTypeCount +
             static_cast<std::size_t>(gpu)) *
                2 +
            (has_previous ? 1 : 0)) *
               2 +
           (resident ? 1 : 0);
  }

  std::vector<SwitchBreakdown> entries_;  ///< cross-job variants
  SwitchBreakdown same_job_;              ///< model/GPU independent
};

}  // namespace hare::switching
