#include "switching/memory_manager.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hare::switching {

SpeculativeMemoryManager::StartInfo SpeculativeMemoryManager::on_task_start(
    JobId job, Bytes footprint, Bytes state_bytes) {
  HARE_CHECK_MSG(!active_.has_value(),
                 "a task is already active on this GPU (non-preemption)");
  HARE_CHECK_MSG(state_bytes <= footprint,
                 "model state cannot exceed the task footprint");
  HARE_CHECK_MSG(footprint <= capacity_,
                 "task footprint " << footprint
                                   << " exceeds GPU memory " << capacity_);

  StartInfo info;

  // If this job's state is already resident, the incoming task reuses it:
  // only the workspace (activations etc.) must be carved out.
  const auto kept_it =
      std::find_if(kept_.begin(), kept_.end(),
                   [&](const KeptState& k) { return k.job == job; });
  const bool was_resident = kept_it != kept_.end();
  const Bytes extra_needed = was_resident ? footprint - state_bytes : footprint;

  const Bytes free_now = capacity_ - used();
  if (extra_needed > free_now) {
    info.evicted_bytes = evict_until_fits(extra_needed - free_now, job);
  }
  HARE_CHECK_MSG(extra_needed <= capacity_ - used(),
                 "eviction could not make room for the incoming task");

  if (was_resident) {
    info.model_resident = true;
    info.bytes_to_load = 0;
    ++hits_;
    // The kept state is absorbed into the active footprint.
    kept_.erase(std::find_if(kept_.begin(), kept_.end(), [&](const KeptState& k) {
      return k.job == job;
    }));
  } else {
    info.model_resident = false;
    info.bytes_to_load = state_bytes;
    ++misses_;
  }

  active_ = ActiveTask{job, footprint, state_bytes};
  return info;
}

void SpeculativeMemoryManager::on_task_complete(Time now) {
  HARE_CHECK_MSG(active_.has_value(), "no active task to complete");
  const ActiveTask task = *active_;
  active_.reset();
  // Greedy keep: the state always fits because the full footprint just did.
  if (task.state_bytes > 0) {
    kept_.push_back(KeptState{task.job, task.state_bytes, now});
  }
}

void SpeculativeMemoryManager::on_job_finished(JobId job) {
  kept_.erase(std::remove_if(kept_.begin(), kept_.end(),
                             [&](const KeptState& k) { return k.job == job; }),
              kept_.end());
}

bool SpeculativeMemoryManager::resident(JobId job) const {
  return std::any_of(kept_.begin(), kept_.end(),
                     [&](const KeptState& k) { return k.job == job; });
}

Bytes SpeculativeMemoryManager::used() const {
  Bytes total = kept_bytes();
  if (active_) total += active_->footprint;
  return total;
}

Bytes SpeculativeMemoryManager::kept_bytes() const {
  Bytes total = 0;
  for (const auto& k : kept_) total += k.bytes;
  return total;
}

Bytes SpeculativeMemoryManager::evict_until_fits(Bytes needed, JobId protect) {
  // kept_ is maintained in completion order; evict from the front
  // (earliest completed) so the most recently finished states survive.
  Bytes evicted = 0;
  for (auto it = kept_.begin(); it != kept_.end() && evicted < needed;) {
    if (it->job == protect) {
      ++it;
      continue;
    }
    evicted += it->bytes;
    it = kept_.erase(it);
  }
  return evicted;
}

}  // namespace hare::switching
