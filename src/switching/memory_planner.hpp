// Offline GPU-memory keep/evict planning (§4, speculative memory
// management).
//
// The paper keeps models of the latest completed tasks greedily and notes
// that the problem "can be formulated as an optimization problem and
// solved to get the optimal solution", but that the heuristic suffices.
// This module provides both:
//
//  * plan_greedy — the paper's heuristic: after each task, keep its model
//    state; when an incoming task needs room, evict the earliest-completed
//    kept states first (exactly SpeculativeMemoryManager's behaviour,
//    reproduced here as a pure planning function so the two can be
//    compared).
//  * plan_optimal — exact minimization of total host→device transfer bytes
//    over the keep decisions, by depth-first search over keep/drop choices
//    with branch-and-bound (admissible bound: remaining cold loads can't
//    be negative). Exponential in the worst case, intended for the short
//    per-GPU sequences where validating the heuristic matters.
//
// The planning input is one GPU's task sequence — job id, footprint, and
// persistent state bytes per task — which the offline scheduler knows in
// advance (that foreknowledge is what makes speculation safe).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hare::switching {

struct PlannedTask {
  JobId job;
  Bytes footprint = 0;    ///< full memory needed while running
  Bytes state_bytes = 0;  ///< persistent model state (weights + optimizer)
};

struct MemoryPlan {
  /// keep[i] = keep task i's model state resident after it completes.
  std::vector<char> keep;
  /// Total bytes transferred host→device across the sequence (first loads
  /// are unavoidable; repeats are saved when the state was kept).
  Bytes transferred_bytes = 0;
  /// Number of resident hits (a task whose job state was kept earlier).
  std::size_t resident_hits = 0;
};

/// The paper's greedy keep-latest heuristic, as a planning function.
[[nodiscard]] MemoryPlan plan_greedy(const std::vector<PlannedTask>& sequence,
                                     Bytes capacity);

/// Exact optimum (minimum transferred bytes) via branch-and-bound.
/// Sequences up to a few dozen tasks are practical.
[[nodiscard]] MemoryPlan plan_optimal(const std::vector<PlannedTask>& sequence,
                                      Bytes capacity);

/// Simulate an explicit keep vector; used to score candidate plans and to
/// verify feasibility (throws if a task cannot fit even after dropping
/// every kept state).
[[nodiscard]] MemoryPlan evaluate_plan(const std::vector<PlannedTask>& sequence,
                                       Bytes capacity,
                                       const std::vector<char>& keep);

}  // namespace hare::switching
