#include "switching/memory_planner.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hare::switching {

namespace {

/// Memory-planner decisions feed `switch.memplan_*` so a trace of the
/// switching runtime shows how much state the plan kept on-device.
void record_plan_metrics(const MemoryPlan& plan) {
  static obs::Counter& hits = obs::counter("switch.memplan_resident_hits");
  static obs::Counter& transferred =
      obs::counter("switch.memplan_transferred_bytes");
  hits.add(plan.resident_hits);
  transferred.add(plan.transferred_bytes);
}

/// Tasks of one job share a model, so their state and footprint must be
/// identical throughout a sequence (a task trains the same network on the
/// same batch size every round).
void check_consistent_sizes(const std::vector<PlannedTask>& sequence) {
  std::map<JobId, std::pair<Bytes, Bytes>> sizes;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const PlannedTask& task = sequence[i];
    HARE_CHECK_MSG(task.state_bytes <= task.footprint,
                   "state exceeds footprint at task " << i);
    const auto [it, inserted] = sizes.try_emplace(
        task.job, task.footprint, task.state_bytes);
    HARE_CHECK_MSG(inserted || (it->second.first == task.footprint &&
                                it->second.second == task.state_bytes),
                   "job " << task.job
                          << " changes footprint/state mid-sequence");
  }
}

/// next_use[i] = index of the next task of the same job after i, or n.
std::vector<std::size_t> next_use_index(
    const std::vector<PlannedTask>& sequence) {
  const std::size_t n = sequence.size();
  std::vector<std::size_t> next(n, n);
  std::map<JobId, std::size_t> last_seen;
  for (std::size_t i = n; i-- > 0;) {
    const auto it = last_seen.find(sequence[i].job);
    if (it != last_seen.end()) next[i] = it->second;
    last_seen[sequence[i].job] = i;
  }
  return next;
}

}  // namespace

MemoryPlan evaluate_plan(const std::vector<PlannedTask>& sequence,
                         Bytes capacity, const std::vector<char>& keep) {
  HARE_SPAN("switching", "switching.evaluate_plan");
  HARE_CHECK_MSG(keep.size() == sequence.size(),
                 "keep vector size mismatch");
  check_consistent_sizes(sequence);
  MemoryPlan plan;
  plan.keep = keep;

  std::map<JobId, Bytes> resident;
  Bytes resident_bytes = 0;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const PlannedTask& task = sequence[i];
    HARE_CHECK_MSG(task.footprint <= capacity,
                   "task " << i << " cannot fit the GPU at all");

    const auto it = resident.find(task.job);
    if (it != resident.end()) {
      ++plan.resident_hits;
      resident_bytes -= it->second;  // absorbed into the running footprint
      resident.erase(it);
    } else {
      plan.transferred_bytes += task.state_bytes;
    }
    HARE_CHECK_MSG(resident_bytes + task.footprint <= capacity,
                   "plan infeasible: kept states leave no room for task "
                       << i);
    if (keep[i]) {
      resident[task.job] = task.state_bytes;
      resident_bytes += task.state_bytes;
    }
  }
  record_plan_metrics(plan);
  return plan;
}

MemoryPlan plan_greedy(const std::vector<PlannedTask>& sequence,
                       Bytes capacity) {
  HARE_SPAN("switching", "switching.plan_greedy");
  check_consistent_sizes(sequence);
  const std::size_t n = sequence.size();
  MemoryPlan plan;
  plan.keep.assign(n, 0);

  struct Kept {
    JobId job;
    Bytes bytes;
    std::size_t completed_at;
  };
  std::vector<Kept> kept;  // completion order (earliest first)
  Bytes kept_bytes = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const PlannedTask& task = sequence[i];
    HARE_CHECK_MSG(task.footprint <= capacity,
                   "task " << i << " cannot fit the GPU at all");

    const auto it =
        std::find_if(kept.begin(), kept.end(),
                     [&](const Kept& k) { return k.job == task.job; });
    if (it != kept.end()) {
      ++plan.resident_hits;
      plan.keep[it->completed_at] = 1;  // the kept state got reused
      kept_bytes -= it->bytes;          // absorbed into the task footprint
      kept.erase(it);
    } else {
      plan.transferred_bytes += task.state_bytes;
    }
    // Evict earliest-completed states until the full footprint fits next
    // to the surviving kept states.
    while (kept_bytes + task.footprint > capacity) {
      HARE_CHECK_MSG(!kept.empty(), "greedy eviction underflow");
      kept_bytes -= kept.front().bytes;
      kept.erase(kept.begin());
    }
    // Greedy keep: always retain the finished task's state.
    if (task.state_bytes > 0) {
      kept.push_back(Kept{task.job, task.state_bytes, i});
      kept_bytes += task.state_bytes;
    }
  }
  // States still resident at the end count as kept.
  for (const Kept& k : kept) plan.keep[k.completed_at] = 1;
  record_plan_metrics(plan);
  return plan;
}

namespace {

struct Search {
  const std::vector<PlannedTask>& sequence;
  const std::vector<std::size_t>& next_use;
  Bytes capacity;
  Bytes best_transferred = std::numeric_limits<Bytes>::max();
  std::vector<char> best_keep;
  std::vector<char> keep;
  std::map<JobId, Bytes> resident;
  Bytes resident_bytes = 0;

  void dfs(std::size_t i, Bytes transferred) {
    if (transferred >= best_transferred) return;  // bound: cost only grows
    if (i == sequence.size()) {
      best_transferred = transferred;
      best_keep = keep;
      return;
    }
    const PlannedTask& task = sequence[i];

    // Execute task i: hit or cold load, then feasibility.
    const auto it = resident.find(task.job);
    const bool hit = it != resident.end();
    Bytes absorbed = 0;
    if (hit) {
      absorbed = it->second;
      resident_bytes -= absorbed;
      resident.erase(task.job);
    } else {
      transferred += task.state_bytes;
    }
    if (resident_bytes + task.footprint <= capacity &&
        transferred < best_transferred) {
      // Branch: keep the state (only useful if the job runs again and the
      // state is non-empty), then drop.
      if (task.state_bytes > 0 && next_use[i] < sequence.size()) {
        keep[i] = 1;
        resident[task.job] = task.state_bytes;
        resident_bytes += task.state_bytes;
        dfs(i + 1, transferred);
        resident_bytes -= task.state_bytes;
        resident.erase(task.job);
        keep[i] = 0;
      }
      dfs(i + 1, transferred);
    }
    if (hit) {
      resident[task.job] = absorbed;
      resident_bytes += absorbed;
    }
  }
};

}  // namespace

MemoryPlan plan_optimal(const std::vector<PlannedTask>& sequence,
                        Bytes capacity) {
  HARE_SPAN("switching", "switching.plan_optimal");
  check_consistent_sizes(sequence);
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    HARE_CHECK_MSG(sequence[i].footprint <= capacity,
                   "task " << i << " cannot fit the GPU at all");
  }
  const auto next_use = next_use_index(sequence);
  Search search{sequence, next_use, capacity, std::numeric_limits<Bytes>::max(),
                {}, std::vector<char>(sequence.size(), 0), {}, 0};
  search.dfs(0, 0);
  HARE_CHECK_MSG(search.best_transferred !=
                     std::numeric_limits<Bytes>::max(),
                 "no feasible plan (should be impossible: all-drop is "
                 "always feasible)");
  return evaluate_plan(sequence, capacity, search.best_keep);
}

}  // namespace hare::switching
