#include "switching/switch_model.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hare::switching {

namespace {

/// Per-state dwell histograms of the switching pipeline, in virtual
/// microseconds of switch-path time (Table 3's component breakdown).
void record_switch_metrics(const SwitchBreakdown& breakdown, bool cross_job) {
  static obs::Histogram& clean_us =
      obs::histogram("switch.clean_us", obs::latency_bounds_us());
  static obs::Histogram& context_us =
      obs::histogram("switch.context_us", obs::latency_bounds_us());
  static obs::Histogram& init_us =
      obs::histogram("switch.init_us", obs::latency_bounds_us());
  static obs::Histogram& alloc_us =
      obs::histogram("switch.alloc_us", obs::latency_bounds_us());
  static obs::Histogram& transfer_us =
      obs::histogram("switch.transfer_us", obs::latency_bounds_us());
  static obs::Counter& switches = obs::counter("switch.cross_job_switches");
  static obs::Counter& resident = obs::counter("switch.resident_hits");
  clean_us.record(breakdown.clean * 1e6);
  context_us.record(breakdown.context * 1e6);
  init_us.record(breakdown.init * 1e6);
  alloc_us.record(breakdown.alloc * 1e6);
  transfer_us.record(breakdown.transfer * 1e6);
  if (cross_job) switches.add();
  if (breakdown.model_resident) resident.add();
}

}  // namespace

std::string_view switch_policy_name(SwitchPolicy policy) {
  switch (policy) {
    case SwitchPolicy::Default: return "Default";
    case SwitchPolicy::PipeSwitch: return "PipeSwitch";
    case SwitchPolicy::Hare: return "Hare";
  }
  return "?";
}

Time SwitchCostModel::cold_init_seconds(workload::ModelType model) {
  // Calibrated process start + framework import + model construction +
  // dataloader setup, standing in for testbed measurements (Table 3's
  // Default row minus context and copy costs).
  switch (model) {
    case workload::ModelType::VGG19: return 0.35;
    case workload::ModelType::ResNet50: return 3.05;
    case workload::ModelType::InceptionV3: return 4.90;
    case workload::ModelType::BertBase: return 6.09;
    case workload::ModelType::Transformer: return 2.34;
    case workload::ModelType::DeepSpeech: return 2.22;
    case workload::ModelType::FastGCN: return 2.43;
    case workload::ModelType::GraphSAGE: return 2.31;
    case workload::ModelType::ResNet152: return 4.00;
  }
  return 2.50;
}

Time SwitchCostModel::pipeline_residual_seconds(workload::ModelType model) {
  // Extra exposed transfer for models whose first pipeline stage is bulky
  // (embedding tables, packed RNN weights) — Table 3's PipeSwitch row shows
  // Bert/Transformer/DeepSpeech well above the pure per-layer estimate.
  switch (model) {
    case workload::ModelType::VGG19: return 0.0;
    case workload::ModelType::ResNet50: return 0.0008;
    case workload::ModelType::InceptionV3: return 0.0012;
    case workload::ModelType::BertBase: return 0.0085;
    case workload::ModelType::Transformer: return 0.0070;
    case workload::ModelType::DeepSpeech: return 0.0061;
    case workload::ModelType::FastGCN: return 0.0014;
    case workload::ModelType::GraphSAGE: return 0.00095;
    case workload::ModelType::ResNet152: return 0.0;
  }
  return 0.0;
}

SwitchBreakdown SwitchCostModel::switch_cost(
    JobId job, workload::ModelType model, cluster::GpuType gpu,
    std::optional<JobId> previous_job,
    const SpeculativeMemoryManager* memory) const {
  HARE_SPAN("switching", "switching.switch_cost");
  const bool same_job = previous_job && *previous_job == job;
  const bool resident = memory != nullptr && memory->resident(job);
  const SwitchBreakdown breakdown =
      compute(model, gpu, same_job, previous_job.has_value(), resident);
  record_switch_metrics(breakdown, previous_job.has_value());
  return breakdown;
}

SwitchBreakdown SwitchCostModel::compute(workload::ModelType model,
                                         cluster::GpuType gpu, bool same_job,
                                         bool has_previous,
                                         bool resident) const {
  const workload::ModelSpec& spec = workload::model_spec(model);
  const cluster::GpuSpec& g = cluster::gpu_spec(gpu);

  SwitchBreakdown breakdown;
  if (config_.free_switching) {
    breakdown.model_resident = same_job;
    return breakdown;
  }

  // Same-job continuation: context, allocator and weights are all in
  // place; only round bookkeeping remains. This is the no-preemption
  // status quo every policy enjoys.
  if (same_job) {
    breakdown.init = config_.same_job_overhead_s;
    breakdown.model_resident = true;
    return breakdown;
  }

  const bool previous_job = has_previous;  // clean cost trigger below
  const double pcie_bytes_per_s = g.pcie_gbps * 1e9;
  const double full_transfer =
      static_cast<double>(spec.parameter_bytes) / pcie_bytes_per_s;
  const double first_layer_transfer =
      full_transfer / std::max(1u, spec.layer_count);
  const double pipeline_overhead =
      config_.per_layer_overhead_s * spec.layer_count;
  const double pipelined_transfer = first_layer_transfer + pipeline_overhead +
                                    pipeline_residual_seconds(model);

  switch (config_.policy) {
    case SwitchPolicy::Default: {
      // Sequential teardown + cold start + bulk copy.
      breakdown.clean = previous_job ? g.context_destroy_s : 0.0;
      breakdown.context = g.context_create_s;
      breakdown.init = cold_init_seconds(model);
      breakdown.alloc = 0.1;  // uncached cudaMalloc of the full footprint
      breakdown.transfer = full_transfer;
      break;
    }
    case SwitchPolicy::PipeSwitch: {
      // Pointer-only cleanup of the predecessor, warm context from the
      // standby pool, cached allocator, per-layer pipelined transfer.
      breakdown.clean =
          previous_job ? 0.0002 + 1e-12 * static_cast<double>(
                                              spec.parameter_bytes)
                       : 0.0;
      breakdown.context = 0.0;
      breakdown.init = config_.switch_base_s;
      breakdown.alloc = 0.0003;
      breakdown.transfer = pipelined_transfer;
      break;
    }
    case SwitchPolicy::Hare: {
      // Early task cleaning removes teardown from the critical path and
      // lets pre-loading overlap the predecessor's tail; speculative
      // memory management may eliminate the transfer outright.
      breakdown.clean = 0.0;
      breakdown.context = 0.0;
      breakdown.init = config_.switch_base_s;
      breakdown.model_resident = resident;
      if (resident) {
        breakdown.alloc = 0.0001;  // workspace only, cached allocator
        breakdown.transfer = 0.0;
      } else {
        breakdown.alloc = 0.0003;
        breakdown.transfer =
            pipelined_transfer * (1.0 - config_.hare_preload_overlap);
      }
      break;
    }
  }
  return breakdown;
}

void SwitchCostTable::build(const SwitchCostModel& model) {
  entries_.assign(workload::kModelCount * cluster::kGpuTypeCount * 4, {});
  for (const workload::ModelType m : workload::all_models()) {
    for (const cluster::GpuType g : cluster::all_gpu_types()) {
      for (const bool has_previous : {false, true}) {
        for (const bool resident : {false, true}) {
          entries_[index(m, g, has_previous, resident)] =
              model.compute(m, g, /*same_job=*/false, has_previous, resident);
        }
      }
    }
  }
  same_job_ = model.compute(workload::ModelType{}, cluster::GpuType{},
                            /*same_job=*/true, true, true);
}

const SwitchBreakdown& SwitchCostTable::lookup(
    JobId job, workload::ModelType model, cluster::GpuType gpu,
    std::optional<JobId> previous_job,
    const SpeculativeMemoryManager* memory) const {
  HARE_SPAN("switching", "switching.switch_cost");
  const bool same_job = previous_job && *previous_job == job;
  const SwitchBreakdown& breakdown =
      same_job ? same_job_
               : entries_[index(model, gpu, previous_job.has_value(),
                                memory != nullptr && memory->resident(job))];
  record_switch_metrics(breakdown, previous_job.has_value());
  return breakdown;
}

}  // namespace hare::switching
