// Standby trainer-process pool with pre-created CUDA contexts (§6).
//
// The prototype keeps three trainer processes per executor, each having
// created its CUDA context in advance (torch.randn(10, device='cuda')).
// An arriving task binds to a standby process and inherits its warm
// context; the process returns to standby on completion and a fresh
// context is (re)created off the critical path. The pool therefore hides
// context-creation latency entirely as long as at least one standby
// process exists; the Default policy (no pool) pays it every cross-job
// switch.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace hare::switching {

class ContextPool {
 public:
  explicit ContextPool(std::uint32_t size) : slots_(size) {}

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  struct Acquire {
    bool warm = false;        ///< a pre-created context was available
    std::uint32_t slot = 0;   ///< which standby process hosts the task
  };

  /// Bind a task of `job` to a standby process. Prefers a slot that last
  /// hosted the same job (its per-process model cache is then warm too);
  /// otherwise takes the least-recently-used free slot. Returns cold only
  /// when every process is busy — which cannot happen with one task per
  /// GPU, but the pool supports oversubscription for tests.
  Acquire acquire(JobId job);

  /// Release the process bound to `slot` back to standby.
  void release(std::uint32_t slot);

  [[nodiscard]] std::size_t warm_hits() const { return warm_hits_; }
  [[nodiscard]] std::size_t cold_misses() const { return cold_misses_; }
  [[nodiscard]] std::uint32_t busy_count() const;

 private:
  struct Slot {
    bool busy = false;
    std::optional<JobId> last_job;
    std::uint64_t last_used = 0;
  };
  std::vector<Slot> slots_;
  std::uint64_t clock_ = 0;
  std::size_t warm_hits_ = 0;
  std::size_t cold_misses_ = 0;
};

}  // namespace hare::switching
