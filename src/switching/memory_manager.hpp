// GPU memory accounting and speculative memory management (§4).
//
// One manager instance models one GPU's device memory. At any moment it
// holds (a) the single active task's full footprint (non-preemption: one
// task per GPU) and (b) a set of *kept* model states — weights + optimizer
// state of previously completed tasks that Hare leaves resident so a later
// task of the same job skips the host→device transfer entirely.
//
// The keep policy is the paper's heuristic verbatim: the next (incoming)
// task always has memory priority, and completed states are kept greedily,
// evicting the *earliest*-completed kept states first when space is needed
// (i.e. the latest-completed states survive).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace hare::switching {

class SpeculativeMemoryManager {
 public:
  explicit SpeculativeMemoryManager(Bytes capacity) : capacity_(capacity) {}

  struct StartInfo {
    bool model_resident = false;  ///< job's state was kept; no reload needed
    Bytes bytes_to_load = 0;      ///< host→device traffic for this start
    Bytes evicted_bytes = 0;      ///< kept state dropped to make room
  };

  /// Admit a task of `job` with the given total footprint, of which
  /// `state_bytes` is the persistent model state. Evicts kept states
  /// (earliest-completed first, never the job's own) until the footprint
  /// fits. The task's footprint must fit in an empty GPU.
  StartInfo on_task_start(JobId job, Bytes footprint, Bytes state_bytes);

  /// The active task finished at `now`: release its workspace; keep its
  /// model state resident if it still fits (it does by construction, since
  /// state <= footprint).
  void on_task_complete(Time now);

  /// Drop a finished job's kept state (its last round completed).
  void on_job_finished(JobId job);

  [[nodiscard]] bool resident(JobId job) const;
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const;
  [[nodiscard]] Bytes kept_bytes() const;
  [[nodiscard]] std::size_t kept_count() const { return kept_.size(); }
  [[nodiscard]] bool has_active() const { return active_.has_value(); }

  /// Cumulative statistics for reports.
  [[nodiscard]] std::size_t hit_count() const { return hits_; }
  [[nodiscard]] std::size_t miss_count() const { return misses_; }

 private:
  struct KeptState {
    JobId job;
    Bytes bytes = 0;
    Time completed_at = 0.0;
  };
  struct ActiveTask {
    JobId job;
    Bytes footprint = 0;
    Bytes state_bytes = 0;
  };

  /// Evict earliest-completed kept states (skipping `protect`) until at
  /// least `needed` bytes are free. Returns bytes evicted.
  Bytes evict_until_fits(Bytes needed, JobId protect);

  Bytes capacity_;
  std::optional<ActiveTask> active_;
  std::vector<KeptState> kept_;  ///< kept in completion-time order
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace hare::switching
