#include "switching/context_pool.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace hare::switching {

namespace {

obs::Counter& warm_hit_counter() {
  static obs::Counter& counter = obs::counter("switch.ctx_warm_hits");
  return counter;
}

obs::Counter& cold_miss_counter() {
  static obs::Counter& counter = obs::counter("switch.ctx_cold_misses");
  return counter;
}

}  // namespace

ContextPool::Acquire ContextPool::acquire(JobId job) {
  HARE_CHECK_MSG(!slots_.empty(), "context pool has no slots");
  ++clock_;

  // Pass 1: a standby process that last hosted this very job.
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.busy && s.last_job && *s.last_job == job) {
      s.busy = true;
      s.last_job = job;
      s.last_used = clock_;
      ++warm_hits_;
      warm_hit_counter().add();
      return {true, i};
    }
  }
  // Pass 2: least-recently-used standby process.
  std::uint32_t best = static_cast<std::uint32_t>(slots_.size());
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].busy) continue;
    if (best == slots_.size() || slots_[i].last_used < slots_[best].last_used) {
      best = i;
    }
  }
  if (best < slots_.size()) {
    Slot& s = slots_[best];
    s.busy = true;
    s.last_job = job;
    s.last_used = clock_;
    ++warm_hits_;
    warm_hit_counter().add();
    return {true, best};
  }
  // Every process is busy: the caller must create a context synchronously.
  ++cold_misses_;
  cold_miss_counter().add();
  return {false, 0};
}

void ContextPool::release(std::uint32_t slot) {
  HARE_CHECK_MSG(slot < slots_.size(), "invalid context pool slot");
  HARE_CHECK_MSG(slots_[slot].busy, "releasing an idle slot");
  slots_[slot].busy = false;
}

std::uint32_t ContextPool::busy_count() const {
  std::uint32_t busy = 0;
  for (const auto& s : slots_) {
    if (s.busy) ++busy;
  }
  return busy;
}

}  // namespace hare::switching
