// Lightweight leveled logging.
//
// The library itself is quiet by default (level = Warn); examples and
// benches raise the level for narrative output, and the env var
// HARE_LOG_LEVEL (debug|info|warn|error|off, or 0-4) overrides the default
// at process start. Logging is synchronous and line-buffered; the
// simulator's hot path never logs below Debug.
//
// An optional sink receives every emitted record after the level check;
// hare::obs installs one when tracing is enabled so log records land in
// the trace as instant events on the same clock as spans.
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string_view>

namespace hare::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Parse a HARE_LOG_LEVEL-style value; nullopt on unknown text.
inline std::optional<LogLevel> parse_log_level(std::string_view text) {
  if (text == "debug" || text == "DEBUG" || text == "0") {
    return LogLevel::Debug;
  }
  if (text == "info" || text == "INFO" || text == "1") return LogLevel::Info;
  if (text == "warn" || text == "WARN" || text == "warning" || text == "2") {
    return LogLevel::Warn;
  }
  if (text == "error" || text == "ERROR" || text == "3") {
    return LogLevel::Error;
  }
  if (text == "off" || text == "OFF" || text == "none" || text == "4") {
    return LogLevel::Off;
  }
  return std::nullopt;
}

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Install (or, with nullptr, remove) the record sink.
  void set_sink(Sink sink) {
    std::scoped_lock lock(mutex_);
    sink_ = std::move(sink);
  }

  void log(LogLevel level, std::string_view message) {
    if (!enabled(level)) return;
    std::scoped_lock lock(mutex_);
    std::clog << "[" << name(level) << "] " << message << '\n';
    if (sink_) sink_(level, message);
  }

 private:
  Logger() {
    if (const char* env = std::getenv("HARE_LOG_LEVEL")) {
      if (const auto parsed = parse_log_level(env)) level_ = *parsed;
    }
  }

  static std::string_view name(LogLevel level) {
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info ";
      case LogLevel::Warn: return "warn ";
      case LogLevel::Error: return "error";
      case LogLevel::Off: return "off  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::Warn;
  std::mutex mutex_;
  Sink sink_;
};

namespace detail {
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  auto& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  (os << ... << args);
  logger.log(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log(LogLevel::Debug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log(LogLevel::Info, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log(LogLevel::Warn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log(LogLevel::Error, std::forward<Args>(args)...);
}

}  // namespace hare::common
