// Lightweight leveled logging.
//
// The library itself is quiet by default (level = Warn); examples and
// benches raise the level for narrative output. Logging is synchronous and
// line-buffered; the simulator's hot path never logs below Debug.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace hare::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, std::string_view message) {
    if (!enabled(level)) return;
    std::scoped_lock lock(mutex_);
    std::clog << "[" << name(level) << "] " << message << '\n';
  }

 private:
  static std::string_view name(LogLevel level) {
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info ";
      case LogLevel::Warn: return "warn ";
      case LogLevel::Error: return "error";
      case LogLevel::Off: return "off  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::Warn;
  std::mutex mutex_;
};

namespace detail {
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  auto& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  (os << ... << args);
  logger.log(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log(LogLevel::Debug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log(LogLevel::Info, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log(LogLevel::Warn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log(LogLevel::Error, std::forward<Args>(args)...);
}

}  // namespace hare::common
