// Minimal fixed-size thread pool for embarrassingly parallel fan-out.
//
// Used in two places: the bench harness fans scenario evaluations
// (different seeds, cluster sizes, schedulers) across hardware threads, and
// the planning pipeline fans per-machine Queyranne separation and per-job
// preprocessing across `shared_pool()`. `parallel_for_each` is the only
// primitive either needs: run a callable for every index in [0, n), block
// until done, and rethrow the first exception. Results are written to
// pre-sized slots and merged in index order by the callers, so pool use
// never changes an outcome — only wall-clock.
//
// Default worker count (threads == 0) honors the HARE_JOBS environment
// variable, falling back to one worker per hardware thread. Exceptions
// from bare submit() tasks are stored and surfaced via rethrow_pending()
// instead of being lost inside a worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace hare::common {

/// Worker count for pools constructed with `threads == 0`: the HARE_JOBS
/// environment variable when set to a positive integer, else one worker
/// per hardware thread. Lets users cap (or force) experiment parallelism
/// without touching call sites.
[[nodiscard]] inline std::size_t default_worker_count() {
  if (const char* env = std::getenv("HARE_JOBS")) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && n > 0) {
      return static_cast<std::size_t>(n);
    }
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) threads = default_worker_count();
    workers_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers_.emplace_back([this, t] { worker_loop(static_cast<int>(t)); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::scoped_lock lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
    // A stored exception nobody collected would otherwise vanish with the
    // pool; surfacing it here is the last chance to make the failure loud.
    if (pending_error_) {
      try {
        std::rethrow_exception(pending_error_);
      } catch (const std::exception& e) {
        std::cerr << "ThreadPool: uncollected task exception at shutdown: "
                  << e.what() << '\n';
      } catch (...) {
        std::cerr << "ThreadPool: uncollected task exception at shutdown\n";
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// The pool whose worker is executing the calling thread, or nullptr when
  /// called from a non-worker thread. Lets nested fan-out (e.g. shard
  /// planning inside an experiment sweep cell) detect that it is already
  /// running on a pool worker and degrade to serial execution instead of
  /// oversubscribing the machine with a second pool.
  [[nodiscard]] static ThreadPool* current() { return current_worker_pool(); }

  /// Index of the calling thread within its pool ([0, size())), or -1 when
  /// the calling thread is not a pool worker. Lets callers keep
  /// thread-affine scratch slots (slot = index + 1, slot 0 for the
  /// non-worker caller) so a worker reuses *its own* buffers across the
  /// tasks it happens to run — no reallocation churn, no false sharing
  /// between slots another worker owns.
  [[nodiscard]] static int current_worker_index() {
    return current_worker_slot();
  }

  /// True when the calling thread is one of *this* pool's workers.
  [[nodiscard]] bool on_worker_thread() const {
    return current_worker_pool() == this;
  }

  /// Enqueue a task. Tasks must not enqueue further tasks and wait on them
  /// (no nesting); the bench harness only uses flat fan-out. A task that
  /// throws has its (first) exception stored — collect it at a join point
  /// with rethrow_pending().
  void submit(std::function<void()> fn) {
    {
      std::scoped_lock lock(mutex_);
      tasks_.push(std::move(fn));
    }
    cv_.notify_one();
  }

  /// Wait until every task submitted so far has finished (the queue is
  /// empty and no worker is mid-task).
  void wait_idle() {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
  }

  /// Rethrow the first exception thrown by a submit()-ed task, if any
  /// (then clears it). parallel_for_each collects its own shard errors;
  /// this covers the bare submit() path, where a throwing task would
  /// otherwise be lost with nothing but a worker silently moving on.
  void rethrow_pending() {
    std::exception_ptr error;
    {
      std::scoped_lock lock(error_mutex_);
      std::swap(error, pending_error_);
    }
    if (error) std::rethrow_exception(error);
  }

  /// True if a submit()-ed task has thrown since the last rethrow_pending.
  [[nodiscard]] bool has_pending_exception() const {
    std::scoped_lock lock(error_mutex_);
    return pending_error_ != nullptr;
  }

  /// Run fn(i) for i in [0, n) across the pool; blocks until all complete.
  /// The first exception thrown by any invocation is rethrown here.
  //
  // The coordination block lives on the heap, owned jointly by the waiting
  // caller and every enqueued shard: a straggler shard that wakes up after
  // the last index completed (and the caller has already been released)
  // still dereferences valid memory when it reads `next` and exits. Keeping
  // it on the caller's stack was a use-after-return race. `fn` itself is
  // safe to hold by pointer: every invocation finishes before `done`
  // reaches n, which is what releases the caller.
  template <typename Fn>
  void parallel_for_each(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    // Re-entrant call from one of this pool's own workers: the caller would
    // block a worker slot waiting for shards that may only ever run on that
    // same slot — a deadlock with one worker, oversubscription otherwise.
    // Run the loop inline on the calling worker instead; exception behavior
    // matches the pooled path — every index is attempted and the first
    // throw is rethrown at the join point, so callers that pre-size result
    // slots see the same partial-completion state either way.
    if (on_worker_thread()) {
      std::exception_ptr error;
      for (std::size_t i = 0; i < n; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (!error) error = std::current_exception();
        }
      }
      if (error) std::rethrow_exception(error);
      return;
    }
    struct Sync {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> done{0};
      std::mutex done_mutex;
      std::condition_variable done_cv;
      std::exception_ptr error;
      std::mutex error_mutex;
    };
    auto sync = std::make_shared<Sync>();
    std::remove_reference_t<Fn>* body = std::addressof(fn);

    const std::size_t shards = std::min(n, workers_.size());
    for (std::size_t s = 0; s < shards; ++s) {
      submit([sync, body, n] {
        for (;;) {
          const std::size_t i =
              sync->next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) break;
          try {
            (*body)(i);
          } catch (...) {
            std::scoped_lock lock(sync->error_mutex);
            if (!sync->error) sync->error = std::current_exception();
          }
          if (sync->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
            std::scoped_lock lock(sync->done_mutex);
            sync->done_cv.notify_all();
          }
        }
      });
    }
    std::unique_lock lock(sync->done_mutex);
    sync->done_cv.wait(lock, [&] {
      return sync->done.load(std::memory_order_acquire) >= n;
    });
    if (sync->error) std::rethrow_exception(sync->error);
  }

 private:
  // One slot per thread naming the pool it serves (plus the worker's index
  // within it); set for the lifetime of worker_loop. A function-local
  // static sidesteps per-TU thread_local duplication in this header-only
  // class.
  [[nodiscard]] static ThreadPool*& current_worker_pool() {
    thread_local ThreadPool* current = nullptr;
    return current;
  }
  [[nodiscard]] static int& current_worker_slot() {
    thread_local int slot = -1;
    return slot;
  }

  void worker_loop(int index) {
    current_worker_pool() = this;
    current_worker_slot() = index;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) {
          current_worker_pool() = nullptr;
          current_worker_slot() = -1;
          return;
        }
        task = std::move(tasks_.front());
        tasks_.pop();
        ++active_;
      }
      try {
        task();
      } catch (...) {
        std::scoped_lock lock(error_mutex_);
        if (!pending_error_) pending_error_ = std::current_exception();
      }
      {
        std::scoped_lock lock(mutex_);
        --active_;
        if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  mutable std::mutex error_mutex_;
  std::exception_ptr pending_error_;
};

/// Process-wide pool for planner-internal fan-out (cut separation, per-job
/// preprocessing, sharded candidate scans). Lazily constructed on first use
/// with one worker per hardware thread. parallel_for_each called from one of
/// this pool's own workers degrades to an inline serial loop (no deadlock,
/// no oversubscription); a distinct ThreadPool instance (as the bench
/// sweeps use) fans out normally.
[[nodiscard]] inline ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hare::common
