// Minimal fixed-size thread pool for embarrassingly parallel bench sweeps.
//
// Each simulation run is single-threaded and deterministic; the pool fans
// scenario evaluations (different seeds, cluster sizes, schedulers) across
// hardware threads. `parallel_for_each` is the only primitive the harness
// needs: run a callable for every index in [0, n), block until done, and
// rethrow the first exception.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hare::common {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::scoped_lock lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not enqueue further tasks and wait on them
  /// (no nesting); the bench harness only uses flat fan-out.
  void submit(std::function<void()> fn) {
    {
      std::scoped_lock lock(mutex_);
      tasks_.push(std::move(fn));
    }
    cv_.notify_one();
  }

  /// Run fn(i) for i in [0, n) across the pool; blocks until all complete.
  /// The first exception thrown by any invocation is rethrown here.
  template <typename Fn>
  void parallel_for_each(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;

    const std::size_t shards = std::min(n, workers_.size());
    for (std::size_t s = 0; s < shards; ++s) {
      submit([&, n] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) break;
          try {
            fn(i);
          } catch (...) {
            std::scoped_lock lock(error_mutex);
            if (!error) error = std::current_exception();
          }
          if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
            std::scoped_lock lock(done_mutex);
            done_cv.notify_all();
          }
        }
      });
    }
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return done.load(std::memory_order_acquire) >= n; });
    if (error) std::rethrow_exception(error);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace hare::common
