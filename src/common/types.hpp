// Fundamental value types shared by every Hare module.
//
// Time is modelled as double-precision seconds (`Time`). The discrete-event
// simulator breaks ties deterministically with sequence numbers, so the
// usual floating-point-time hazards (nondeterministic ordering of equal
// stamps) do not arise. Strongly-typed integer ids prevent mixing job, task,
// round, GPU, and machine indices.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>

namespace hare {

/// Simulation time in seconds.
using Time = double;

/// Sentinel for "not yet scheduled / unknown".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Bytes of (GPU or host) memory.
using Bytes = std::uint64_t;

inline constexpr Bytes operator""_MiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024ull * 1024ull;
}
inline constexpr Bytes operator""_GiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024ull * 1024ull * 1024ull;
}

/// Strongly typed id. `Tag` only disambiguates the type; it is never
/// instantiated.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::int32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  underlying_type value_ = -1;
};

struct JobTag {};
struct TaskTag {};
struct GpuTag {};
struct MachineTag {};
struct RoundTag {};

using JobId = Id<JobTag>;
using TaskId = Id<TaskTag>;
using GpuId = Id<GpuTag>;
using MachineId = Id<MachineTag>;

/// Round index within a job (0-based).
using RoundIndex = std::int32_t;

}  // namespace hare

namespace std {
template <typename Tag>
struct hash<hare::Id<Tag>> {
  size_t operator()(hare::Id<Tag> id) const noexcept {
    return std::hash<typename hare::Id<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
