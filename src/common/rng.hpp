// Deterministic, splittable random number generation.
//
// All stochastic behaviour in Hare (trace synthesis, profiling noise,
// randomized tests) flows through `Rng` so that a single seed reproduces an
// entire experiment. `Rng::split()` derives an independent child stream,
// which lets parallel bench sweeps draw from per-scenario streams without
// sharing mutable state across threads.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace hare::common {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = split_mix64(sm);
  }

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (one value per call; simple and exact).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Log-normal: exp(normal(mu, sigma)).
  double log_normal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Bernoulli trial.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child stream (stable: same parent state yields
  /// the same child).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

 private:
  static std::uint64_t split_mix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace hare::common
