// Error handling helpers.
//
// Invariant violations (programming errors, malformed inputs) throw
// `hare::common::Error`; HARE_CHECK is used at module boundaries where the
// cost is negligible next to the work being guarded.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hare::common {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& message) {
  std::ostringstream os;
  os << "HARE_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace hare::common

#define HARE_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::hare::common::detail::fail(#expr, __FILE__, __LINE__, "");         \
    }                                                                      \
  } while (false)

#define HARE_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream hare_check_os;                                    \
      hare_check_os << msg;                                                \
      ::hare::common::detail::fail(#expr, __FILE__, __LINE__,              \
                                   hare_check_os.str());                   \
    }                                                                      \
  } while (false)
