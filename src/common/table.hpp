// Text table and CSV emission for the benchmark harness.
//
// Every bench binary prints the rows/series the corresponding paper table
// or figure reports, in an aligned text table (for humans) and optionally
// CSV (for replotting).
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace hare::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Lightweight handle onto the table's current row; copying the handle
  /// still appends to the same table (so `auto row = table.row()` is safe).
  class Row {
   public:
    explicit Row(Table& table) : table_(&table) {}

    Row& cell(std::string value) {
      table_->cell(std::move(value));
      return *this;
    }
    Row& cell(double value, int precision = 2) {
      table_->cell(value, precision);
      return *this;
    }
    Row& cell(std::size_t value) {
      table_->cell(value);
      return *this;
    }
    Row& cell(int value) {
      table_->cell(value);
      return *this;
    }

   private:
    Table* table_;
  };

  /// Begin a new row; fill it left to right through the returned handle
  /// (or through Table::cell directly).
  Row row() {
    rows_.emplace_back();
    return Row(*this);
  }

  Table& cell(std::string value) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().push_back(std::move(value));
    return *this;
  }

  Table& cell(double value, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return cell(os.str());
  }

  Table& cell(std::size_t value) { return cell(std::to_string(value)); }
  Table& cell(int value) { return cell(std::to_string(value)); }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], r[c].size());

    auto line = [&] {
      os << '+';
      for (const auto w : widths) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    auto emit = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : std::string{};
        os << ' ' << v << std::string(widths[c] - v.size() + 1, ' ') << '|';
      }
      os << '\n';
    };
    line();
    emit(headers_);
    line();
    for (const auto& r : rows_) emit(r);
    line();
  }

  void print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) os << ',';
        os << escape(cells[c]);
      }
      os << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
  }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    print(os);
    return os.str();
  }

 private:
  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hare::common
