// Process resource queries for the scale benches.
//
// The six-figure bench grid reports peak resident set size alongside
// wall-clock so a regression that trades time for memory (or silently
// reintroduces per-plan allocation churn) still shows up in the recorded
// baseline. Linux getrusage reports ru_maxrss in kilobytes; the helper
// normalizes to bytes and degrades to 0 on platforms without the call, so
// callers can always print the value and gate only when it is nonzero.
#pragma once

#include <cstddef>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace hare::common {

/// Peak resident set size of the calling process in bytes; 0 when the
/// platform does not expose it.
inline std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace hare::common
