// Streaming summary statistics and empirical distributions.
//
// Benches and metrics code accumulate samples into `Summary` (Welford mean /
// variance, min/max) or `Distribution` (keeps samples; exact quantiles and
// CDF evaluation, used for the paper's Fig 13 JCT CDF).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace hare::common {

/// Constant-memory running summary (Welford's algorithm).
class Summary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  [[nodiscard]] double cv() const {
    return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
  }

  void merge(const Summary& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample-retaining distribution with exact quantiles and CDF queries.
class Distribution {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  void add(std::span<const double> xs) {
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// q in [0, 1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
  }

  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double max() const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    return samples_.back();
  }

  /// Evaluation points for plotting a CDF curve: `points` evenly spaced
  /// x-values spanning [min, max], paired with the CDF at each.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_curve(
      std::size_t points) const {
    std::vector<std::pair<double, double>> curve;
    if (samples_.empty() || points == 0) return curve;
    ensure_sorted();
    const double lo = samples_.front();
    const double hi = samples_.back();
    curve.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
      const double x =
          points == 1
              ? hi
              : lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(points - 1);
      curve.emplace_back(x, cdf(x));
    }
    return curve;
  }

  [[nodiscard]] const std::vector<double>& samples() const {
    ensure_sorted();
    return samples_;
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Relative difference |a - b| / max(|a|, |b|); 0 when both are 0.
[[nodiscard]] inline double relative_difference(double a, double b) {
  const double denom = std::max(std::abs(a), std::abs(b));
  return denom == 0.0 ? 0.0 : std::abs(a - b) / denom;
}

}  // namespace hare::common
